//! Training and detection configuration.

use crate::api::DetectorSpec;
use crate::ensemble::MergePolicy;
use crate::error::AdtError;
use adt_sketch::UpdateStrategy;
use adt_stats::{
    pinned_width, sketch_table_bytes, CoocMode, NpmiParams, PipelineOptions, SketchSpec,
    StatsConfig, StreamingOptions,
};
use serde::{Deserialize, Serialize};

/// Which candidate language space to optimize over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LanguageSpace {
    /// The paper's 144 restricted languages.
    Restricted144,
    /// The 36-language ablation space (letters tied).
    Coarse36,
}

/// Full training configuration (the knobs of Definition 3).
///
/// Prefer [`AutoDetectConfig::builder`] over struct-literal construction:
/// the builder validates every knob and fills derived defaults, so an
/// invalid combination surfaces as a typed [`AdtError::Config`] instead
/// of a silent mis-train.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoDetectConfig {
    /// Precision requirement `P` (the paper targets ≥ 0.95).
    pub precision_target: f64,
    /// Memory budget `M` in bytes for the selected ensemble.
    pub memory_budget: usize,
    /// NPMI parameters (smoothing factor `f`).
    pub npmi: NpmiParams,
    /// Statistics construction parameters.
    pub stats: StatsConfig,
    /// Candidate language space.
    pub space: LanguageSpace,
    /// Number of training examples to generate (split roughly evenly
    /// between `T⁺` and `T⁻`).
    pub training_examples: usize,
    /// Crude-NPMI threshold above which a column counts as compatible
    /// (`C⁺` membership). Appendix F uses 0 against a 350M-column corpus;
    /// at our ~10³-smaller scale legitimate same-column pairs with rare
    /// pattern combinations (IP octet-length mixes, e-mail name lengths)
    /// score slightly negative from sparsity alone, and excluding them
    /// from `T⁺` would let per-language thresholds drift above the
    /// smoothing floor of unseen pairs. −0.2 keeps those sparse positives
    /// in `T⁺` while still rejecting genuinely mixed columns (true format
    /// mixes score below the −0.3 negative-pruning threshold).
    pub compat_threshold: f64,
    /// Crude-NPMI threshold for pruning accidental-compatible negatives
    /// (Appendix F uses −0.3: drop `C₂ ∪ {u}` if any `v ∈ C₂` has
    /// `NPMI(G(u), G(v)) ≥ −0.3`).
    pub negative_prune_threshold: f64,
    /// Worker threads for per-language scans.
    pub threads: usize,
    /// Worker threads for the sharded training pipeline; `0` defers to
    /// [`AutoDetectConfig::threads`]. Training results are identical at
    /// any setting (the pipeline merges deterministically), so this only
    /// tunes wall-clock and memory.
    pub train_threads: usize,
    /// Cap on distinct values per column considered during detection
    /// (carried into the trained model).
    pub max_distinct_values: usize,
    /// Seed for training-set sampling.
    pub seed: u64,
    /// When set, the *final* selected languages store co-occurrence in a
    /// count-min sketch with this fraction of their exact size
    /// (Figure 8(a): 1%, 10%, 100%=None).
    pub sketch_fraction: Option<f64>,
    /// How the training pipeline accumulates co-occurrence counts.
    /// [`CoocMode::Streaming`] bounds peak memory by streaming pair
    /// counts into per-language count-min sketches auto-sized to
    /// [`AutoDetectConfig::streaming_epsilon`], replacing the global
    /// [`AutoDetectConfig::sketch_fraction`] heuristic (the two are
    /// mutually exclusive).
    #[serde(default)]
    pub cooc: CoocMode,
    /// Target additive-error fraction for streaming sketch auto-sizing:
    /// per-key over-count stays within `ε·N` of the inserted pair mass
    /// with probability `1 − e^−depth`. Only read when
    /// [`AutoDetectConfig::cooc`] is [`CoocMode::Streaming`].
    #[serde(default = "default_streaming_epsilon")]
    pub streaming_epsilon: f64,
    /// Detector set for ensemble scans, as canonical configuration names
    /// validated against [`crate::api::KNOWN_DETECTORS`]. The default
    /// single-member set runs Auto-Detect alone (no ensemble engine).
    #[serde(default = "default_detectors")]
    pub detectors: Vec<String>,
    /// How per-detector rankings are merged when more than one detector
    /// is configured.
    #[serde(default)]
    pub merge: MergePolicy,
    /// Online learning: retrain once this many columns have been
    /// absorbed since the last retrain (the serve learn loop's count
    /// threshold).
    #[serde(default = "default_online_absorb_columns")]
    pub online_absorb_columns: usize,
    /// Online learning: retrain after this many seconds with at least
    /// one absorbed-but-untrained column (the serve learn loop's time
    /// threshold).
    #[serde(default = "default_online_interval_secs")]
    pub online_interval_secs: u64,
}

/// The default single-detector set.
fn default_detectors() -> Vec<String> {
    vec!["autodetect".to_string()]
}

fn default_online_absorb_columns() -> usize {
    256
}

fn default_online_interval_secs() -> u64 {
    60
}

fn default_streaming_epsilon() -> f64 {
    StreamingOptions::default().epsilon
}

impl Default for AutoDetectConfig {
    fn default() -> Self {
        AutoDetectConfig {
            precision_target: 0.95,
            memory_budget: 64 << 20,
            npmi: NpmiParams::default(),
            stats: StatsConfig::default(),
            space: LanguageSpace::Restricted144,
            training_examples: 100_000,
            compat_threshold: -0.2,
            negative_prune_threshold: -0.3,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            train_threads: 0,
            max_distinct_values: 64,
            seed: 0xAD7_7EA1,
            sketch_fraction: None,
            cooc: CoocMode::default(),
            streaming_epsilon: default_streaming_epsilon(),
            detectors: default_detectors(),
            merge: MergePolicy::default(),
            online_absorb_columns: default_online_absorb_columns(),
            online_interval_secs: default_online_interval_secs(),
        }
    }
}

impl AutoDetectConfig {
    /// A validating builder seeded with the default configuration.
    pub fn builder() -> AutoDetectConfigBuilder {
        AutoDetectConfigBuilder {
            config: AutoDetectConfig::default(),
        }
    }

    /// A small configuration for tests and examples: coarse language
    /// space, few training examples, tight budget.
    pub fn small() -> Self {
        AutoDetectConfig {
            training_examples: 4_000,
            space: LanguageSpace::Coarse36,
            memory_budget: 16 << 20,
            ..AutoDetectConfig::default()
        }
    }

    /// The candidate languages implied by [`AutoDetectConfig::space`].
    pub fn candidate_languages(&self) -> Vec<adt_patterns::Language> {
        match self.space {
            LanguageSpace::Restricted144 => adt_patterns::enumerate_restricted_languages(),
            LanguageSpace::Coarse36 => adt_patterns::enumerate_coarse_languages(),
        }
    }

    /// Worker threads the training pipeline will actually use:
    /// [`AutoDetectConfig::train_threads`] when set, otherwise
    /// [`AutoDetectConfig::threads`] (floored at 1).
    pub fn effective_train_threads(&self) -> usize {
        if self.train_threads > 0 {
            self.train_threads
        } else {
            self.threads.max(1)
        }
    }

    /// Streaming sizing knobs implied by this configuration: the target
    /// epsilon over the default geometry bounds.
    pub fn streaming_options(&self) -> StreamingOptions {
        StreamingOptions {
            epsilon: self.streaming_epsilon,
            ..StreamingOptions::default()
        }
    }

    /// Pipeline options for offline training passes: the effective
    /// thread count plus the configured co-occurrence mode, with
    /// per-batch auto-sized streaming geometry.
    pub fn train_pipeline_options(&self) -> PipelineOptions {
        PipelineOptions {
            threads: self.effective_train_threads(),
            cooc: self.cooc,
            streaming: self.streaming_options(),
            ..PipelineOptions::default()
        }
    }

    /// Pipeline options for the online learner's absorb passes. The
    /// streaming width is pinned ([`StreamingOptions::fixed_width`])
    /// instead of auto-sized per batch: every delta must land in
    /// sketches of one shared geometry so cell-wise merges into the
    /// long-lived accumulators stay valid across retrains.
    pub fn online_pipeline_options(&self) -> PipelineOptions {
        let base = self.streaming_options();
        PipelineOptions {
            threads: self.effective_train_threads(),
            cooc: self.cooc,
            streaming: StreamingOptions {
                fixed_width: Some(pinned_width(&base)),
                ..base
            },
            ..PipelineOptions::default()
        }
    }

    /// The sketch spec matching the pinned online streaming geometry, or
    /// `None` outside streaming mode. [`SketchSpec`] sizes by byte
    /// budget; `sketch_table_bytes` is exactly invertible for
    /// `width × depth` u32 tables, so accumulators created from this
    /// spec share geometry (and hash family, and the commutative Plain
    /// strategy) with every absorb pass's shard sketches.
    pub fn online_streaming_spec(&self) -> Option<SketchSpec> {
        if self.cooc != CoocMode::Streaming {
            return None;
        }
        let opts = self.streaming_options();
        let width = pinned_width(&opts);
        Some(SketchSpec {
            budget_bytes: sketch_table_bytes(width, opts.depth),
            depth: opts.depth,
            strategy: UpdateStrategy::Plain,
            seed: opts.seed,
        })
    }

    /// The sketch spec for a language whose exact size is `exact_bytes`,
    /// honoring [`AutoDetectConfig::sketch_fraction`].
    pub fn sketch_spec_for(&self, exact_bytes: usize) -> Option<SketchSpec> {
        self.sketch_fraction.map(|frac| SketchSpec {
            budget_bytes: ((exact_bytes as f64 * frac) as usize).max(4096),
            ..SketchSpec::default()
        })
    }

    /// Validates every knob, returning the first violation.
    pub fn validate(&self) -> Result<(), AdtError> {
        fn fail(msg: String) -> Result<(), AdtError> {
            Err(AdtError::Config(msg))
        }
        if !(self.precision_target > 0.0 && self.precision_target <= 1.0) {
            return fail(format!(
                "precision_target must be in (0, 1], got {}",
                self.precision_target
            ));
        }
        if self.memory_budget == 0 {
            return fail("memory_budget must be positive".into());
        }
        if self.training_examples == 0 {
            return fail("training_examples must be positive".into());
        }
        if self.max_distinct_values < 2 {
            return fail(format!(
                "max_distinct_values must be at least 2 (pairs), got {}",
                self.max_distinct_values
            ));
        }
        if self.compat_threshold <= self.negative_prune_threshold {
            return fail(format!(
                "compat_threshold ({}) must exceed negative_prune_threshold ({})",
                self.compat_threshold, self.negative_prune_threshold
            ));
        }
        if let Some(f) = self.sketch_fraction {
            if !(f > 0.0 && f <= 1.0) {
                return fail(format!("sketch_fraction must be in (0, 1], got {f}"));
            }
        }
        if !(self.streaming_epsilon.is_finite()
            && self.streaming_epsilon > 0.0
            && self.streaming_epsilon < 1.0)
        {
            return fail(format!(
                "streaming_epsilon must be in (0, 1), got {}",
                self.streaming_epsilon
            ));
        }
        match self.cooc {
            CoocMode::Streaming => {
                if self.sketch_fraction.is_some() {
                    return fail(
                        "cooc=streaming auto-sizes sketches per language; \
                         it replaces sketch_fraction (unset one of the two)"
                            .into(),
                    );
                }
                if self.stats.sketch.is_some() {
                    return fail(
                        "cooc=streaming accumulates directly into sketches; \
                         stats.sketch (deferred compression) must be unset"
                            .into(),
                    );
                }
            }
            CoocMode::Exact => {
                if self.sketch_fraction.is_some() || self.stats.sketch.is_some() {
                    return fail(
                        "cooc=exact forbids sketch compression; \
                         unset sketch_fraction and stats.sketch"
                            .into(),
                    );
                }
            }
            CoocMode::Deferred => {}
        }
        if self.online_absorb_columns == 0 {
            return fail("online_absorb_columns must be positive".into());
        }
        if self.online_interval_secs == 0 {
            return fail("online_interval_secs must be positive".into());
        }
        let mut specs: Vec<DetectorSpec> = Vec::with_capacity(self.detectors.len());
        for name in &self.detectors {
            let spec = DetectorSpec::parse(name)?;
            if specs.contains(&spec) {
                return fail(format!("duplicate detector '{}'", spec.name()));
            }
            specs.push(spec);
        }
        if specs.is_empty() {
            return fail("detectors must name at least one detector".into());
        }
        match &self.merge {
            MergePolicy::Union => {}
            MergePolicy::Vote(k) => {
                if *k < 1 {
                    return fail("vote merge threshold must be at least 1".into());
                }
                if *k > specs.len() {
                    return fail(format!(
                        "vote merge threshold {k} exceeds the {} configured detector(s)",
                        specs.len()
                    ));
                }
            }
            MergePolicy::Calibrated(priors) => {
                for (name, weight) in priors {
                    DetectorSpec::parse(name)?;
                    if !(weight.is_finite() && *weight > 0.0) {
                        return fail(format!(
                            "calibrated prior for '{name}' must be a positive finite weight, got {weight}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The validated, normalized detector specs this configuration names.
    pub fn detector_specs(&self) -> Result<Vec<DetectorSpec>, AdtError> {
        self.detectors
            .iter()
            .map(|n| DetectorSpec::parse(n))
            .collect()
    }
}

/// Validating builder for [`AutoDetectConfig`].
///
/// ```
/// use adt_core::AutoDetectConfig;
///
/// let config = AutoDetectConfig::builder()
///     .precision_target(0.9)
///     .memory_budget(32 << 20)
///     .threads(4)
///     .build()
///     .unwrap();
/// assert_eq!(config.threads, 4);
/// ```
#[derive(Debug, Clone)]
pub struct AutoDetectConfigBuilder {
    config: AutoDetectConfig,
}

impl AutoDetectConfigBuilder {
    /// Precision requirement `P` in `(0, 1]`.
    pub fn precision_target(mut self, p: f64) -> Self {
        self.config.precision_target = p;
        self
    }

    /// Memory budget in bytes for the selected ensemble.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.config.memory_budget = bytes;
        self
    }

    /// Worker threads for parallel scans; `0` means all available cores.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        self
    }

    /// Worker threads for the sharded training pipeline; `0` defers to
    /// the scan thread count.
    pub fn train_threads(mut self, threads: usize) -> Self {
        self.config.train_threads = threads;
        self
    }

    /// Cap on distinct values per column considered during detection.
    pub fn max_distinct_values(mut self, cap: usize) -> Self {
        self.config.max_distinct_values = cap;
        self
    }

    /// Number of training examples to generate.
    pub fn training_examples(mut self, n: usize) -> Self {
        self.config.training_examples = n;
        self
    }

    /// Candidate language space.
    pub fn space(mut self, space: LanguageSpace) -> Self {
        self.config.space = space;
        self
    }

    /// Seed for training-set sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Co-occurrence sketch compression fraction in `(0, 1]`, or `None`
    /// for exact counts.
    pub fn sketch_fraction(mut self, fraction: Option<f64>) -> Self {
        self.config.sketch_fraction = fraction;
        self
    }

    /// Co-occurrence accumulation mode for training pipelines.
    /// [`CoocMode::Streaming`] is incompatible with
    /// [`Self::sketch_fraction`] and a `stats.sketch` spec (it replaces
    /// both); violations are [`AdtError::Config`] at [`Self::build`].
    pub fn cooc_mode(mut self, mode: CoocMode) -> Self {
        self.config.cooc = mode;
        self
    }

    /// Target additive-error fraction for streaming sketch auto-sizing,
    /// in `(0, 1)`. Only read in [`CoocMode::Streaming`].
    pub fn streaming_epsilon(mut self, epsilon: f64) -> Self {
        self.config.streaming_epsilon = epsilon;
        self
    }

    /// Detector set for ensemble scans by canonical configuration name
    /// (`"autodetect"`, `"fregex"`, …). Unknown names, duplicates, and
    /// an empty set are [`AdtError::Config`] errors at [`Self::build`].
    pub fn detectors<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.config.detectors = names.into_iter().map(Into::into).collect();
        self
    }

    /// Merge policy pooling per-detector rankings. A `vote:k` threshold
    /// larger than the detector set is an [`AdtError::Config`] error at
    /// [`Self::build`].
    pub fn merge_policy(mut self, merge: MergePolicy) -> Self {
        self.config.merge = merge;
        self
    }

    /// Online learning: columns absorbed since the last retrain that
    /// trigger the next one. Zero is an [`AdtError::Config`] error at
    /// [`Self::build`].
    pub fn online_absorb_columns(mut self, columns: usize) -> Self {
        self.config.online_absorb_columns = columns;
        self
    }

    /// Online learning: seconds of pending-column age that trigger a
    /// retrain. Zero is an [`AdtError::Config`] error at [`Self::build`].
    pub fn online_interval_secs(mut self, secs: u64) -> Self {
        self.config.online_interval_secs = secs;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<AutoDetectConfig, AdtError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_knobs() {
        let c = AutoDetectConfig::default();
        assert_eq!(c.precision_target, 0.95);
        assert_eq!(c.npmi.smoothing, 0.1);
        // Scaled-corpus relaxation of Appendix F's 0 threshold (see the
        // field docs); stays above the negative-pruning threshold.
        assert_eq!(c.compat_threshold, -0.2);
        assert!(c.compat_threshold > c.negative_prune_threshold);
        assert_eq!(c.candidate_languages().len(), 144);
        assert_eq!(c.max_distinct_values, 64);
        c.validate().unwrap();
    }

    #[test]
    fn small_config_uses_coarse_space() {
        assert_eq!(AutoDetectConfig::small().candidate_languages().len(), 36);
    }

    #[test]
    fn sketch_spec_scales_with_fraction() {
        let mut c = AutoDetectConfig {
            sketch_fraction: Some(0.01),
            ..AutoDetectConfig::default()
        };
        let spec = c.sketch_spec_for(10 << 20).unwrap();
        assert_eq!(spec.budget_bytes, (10 << 20) / 100);
        c.sketch_fraction = None;
        assert!(c.sketch_spec_for(10 << 20).is_none());
    }

    #[test]
    fn builder_validates_and_builds() {
        let c = AutoDetectConfig::builder()
            .precision_target(0.9)
            .memory_budget(1 << 20)
            .threads(3)
            .max_distinct_values(10)
            .training_examples(500)
            .space(LanguageSpace::Coarse36)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(c.precision_target, 0.9);
        assert_eq!(c.threads, 3);
        assert_eq!(c.max_distinct_values, 10);
        assert_eq!(c.space, LanguageSpace::Coarse36);
    }

    #[test]
    fn builder_rejects_bad_knobs() {
        assert!(AutoDetectConfig::builder()
            .precision_target(0.0)
            .build()
            .is_err());
        assert!(AutoDetectConfig::builder()
            .precision_target(1.5)
            .build()
            .is_err());
        assert!(AutoDetectConfig::builder()
            .memory_budget(0)
            .build()
            .is_err());
        assert!(AutoDetectConfig::builder()
            .max_distinct_values(1)
            .build()
            .is_err());
        assert!(AutoDetectConfig::builder()
            .sketch_fraction(Some(0.0))
            .build()
            .is_err());
        assert!(AutoDetectConfig::builder()
            .training_examples(0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_accepts_valid_detector_sets() {
        let c = AutoDetectConfig::builder()
            .detectors(["autodetect", "fregex", "cdm"])
            .merge_policy(MergePolicy::Vote(2))
            .build()
            .unwrap();
        assert_eq!(c.detectors, vec!["autodetect", "fregex", "cdm"]);
        assert_eq!(c.merge, MergePolicy::Vote(2));
        let specs = c.detector_specs().unwrap();
        assert_eq!(specs[1].name(), "fregex");
    }

    #[test]
    fn builder_rejects_unknown_detector_name() {
        let err = AutoDetectConfig::builder()
            .detectors(["autodetect", "nonesuch"])
            .build()
            .unwrap_err();
        assert!(
            matches!(err, AdtError::Config(ref m) if m.contains("nonesuch")),
            "{err}"
        );
    }

    #[test]
    fn builder_rejects_bad_detector_sets_and_merges() {
        // Duplicate member.
        assert!(AutoDetectConfig::builder()
            .detectors(["fregex", "fregex"])
            .build()
            .is_err());
        // Empty set.
        assert!(AutoDetectConfig::builder()
            .detectors(Vec::<String>::new())
            .build()
            .is_err());
        // Malformed vote threshold (programmatic construction can bypass
        // MergePolicy::parse).
        assert!(AutoDetectConfig::builder()
            .detectors(["autodetect", "fregex"])
            .merge_policy(MergePolicy::Vote(0))
            .build()
            .is_err());
        // Vote threshold above the member count can never fire.
        assert!(AutoDetectConfig::builder()
            .detectors(["autodetect", "fregex"])
            .merge_policy(MergePolicy::Vote(3))
            .build()
            .is_err());
        // Calibrated priors must name known detectors with sane weights.
        assert!(AutoDetectConfig::builder()
            .merge_policy(MergePolicy::Calibrated(vec![("nonesuch".into(), 0.5)]))
            .build()
            .is_err());
        assert!(AutoDetectConfig::builder()
            .merge_policy(MergePolicy::Calibrated(vec![("fregex".into(), 0.0)]))
            .build()
            .is_err());
    }

    #[test]
    fn default_detector_set_is_autodetect_union() {
        let c = AutoDetectConfig::default();
        assert_eq!(c.detectors, vec!["autodetect"]);
        assert_eq!(c.merge, MergePolicy::Union);
        c.validate().unwrap();
    }

    #[test]
    fn online_knobs_default_and_validate() {
        let c = AutoDetectConfig::default();
        assert_eq!(c.online_absorb_columns, 256);
        assert_eq!(c.online_interval_secs, 60);
        let c = AutoDetectConfig::builder()
            .online_absorb_columns(32)
            .online_interval_secs(5)
            .build()
            .unwrap();
        assert_eq!(c.online_absorb_columns, 32);
        assert_eq!(c.online_interval_secs, 5);
        assert!(AutoDetectConfig::builder()
            .online_absorb_columns(0)
            .build()
            .is_err());
        assert!(AutoDetectConfig::builder()
            .online_interval_secs(0)
            .build()
            .is_err());
    }

    #[test]
    fn streaming_mode_knobs_validate_and_thread_through() {
        let c = AutoDetectConfig::builder()
            .cooc_mode(CoocMode::Streaming)
            .streaming_epsilon(1.0 / 256.0)
            .train_threads(3)
            .build()
            .unwrap();
        assert_eq!(c.cooc, CoocMode::Streaming);
        let opts = c.train_pipeline_options();
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.cooc, CoocMode::Streaming);
        assert_eq!(opts.streaming.epsilon, 1.0 / 256.0);
        assert_eq!(opts.streaming.fixed_width, None);

        // The online path pins exactly the worst-case width for epsilon.
        let online = c.online_pipeline_options();
        let pinned = pinned_width(&c.streaming_options());
        assert_eq!(online.streaming.fixed_width, Some(pinned));

        // The accumulator spec round-trips that geometry through the
        // byte-budget constructor.
        let spec = c.online_streaming_spec().unwrap();
        assert_eq!(spec.budget_bytes, sketch_table_bytes(pinned, spec.depth));
        assert_eq!(spec.strategy, UpdateStrategy::Plain);
        assert_eq!(spec.seed, c.streaming_options().seed);
        assert!(AutoDetectConfig::default()
            .online_streaming_spec()
            .is_none());
    }

    #[test]
    fn streaming_mode_rejects_conflicting_sketch_knobs() {
        for bad in [0.0, 1.0, f64::NAN, -0.5] {
            assert!(AutoDetectConfig::builder()
                .cooc_mode(CoocMode::Streaming)
                .streaming_epsilon(bad)
                .build()
                .is_err());
        }
        assert!(AutoDetectConfig::builder()
            .cooc_mode(CoocMode::Streaming)
            .sketch_fraction(Some(0.1))
            .build()
            .is_err());
        let mut c = AutoDetectConfig {
            cooc: CoocMode::Streaming,
            ..AutoDetectConfig::default()
        };
        c.stats.sketch = Some(SketchSpec::default());
        assert!(c.validate().is_err());
        // Exact mode forbids both sketch knobs outright.
        assert!(AutoDetectConfig::builder()
            .cooc_mode(CoocMode::Exact)
            .sketch_fraction(Some(0.5))
            .build()
            .is_err());
        let mut c = AutoDetectConfig {
            cooc: CoocMode::Exact,
            ..AutoDetectConfig::default()
        };
        c.stats.sketch = Some(SketchSpec::default());
        assert!(c.validate().is_err());
        // Deferred (the default) keeps the historical combinations.
        assert!(AutoDetectConfig::builder()
            .sketch_fraction(Some(0.5))
            .build()
            .is_ok());
    }

    #[test]
    fn builder_zero_threads_means_available_parallelism() {
        let c = AutoDetectConfig::builder().threads(0).build().unwrap();
        assert!(c.threads >= 1);
    }

    #[test]
    fn train_threads_defers_to_scan_threads_when_zero() {
        let c = AutoDetectConfig::builder()
            .threads(3)
            .train_threads(0)
            .build()
            .unwrap();
        assert_eq!(c.effective_train_threads(), 3);
        let c = AutoDetectConfig::builder()
            .threads(3)
            .train_threads(7)
            .build()
            .unwrap();
        assert_eq!(c.effective_train_threads(), 7);
    }
}
