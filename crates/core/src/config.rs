//! Training configuration.

use adt_stats::{NpmiParams, SketchSpec, StatsConfig};
use serde::{Deserialize, Serialize};

/// Which candidate language space to optimize over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LanguageSpace {
    /// The paper's 144 restricted languages.
    Restricted144,
    /// The 36-language ablation space (letters tied).
    Coarse36,
}

/// Full training configuration (the knobs of Definition 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoDetectConfig {
    /// Precision requirement `P` (the paper targets ≥ 0.95).
    pub precision_target: f64,
    /// Memory budget `M` in bytes for the selected ensemble.
    pub memory_budget: usize,
    /// NPMI parameters (smoothing factor `f`).
    pub npmi: NpmiParams,
    /// Statistics construction parameters.
    pub stats: StatsConfig,
    /// Candidate language space.
    pub space: LanguageSpace,
    /// Number of training examples to generate (split roughly evenly
    /// between `T⁺` and `T⁻`).
    pub training_examples: usize,
    /// Crude-NPMI threshold above which a column counts as compatible
    /// (`C⁺` membership). Appendix F uses 0 against a 350M-column corpus;
    /// at our ~10³-smaller scale legitimate same-column pairs with rare
    /// pattern combinations (IP octet-length mixes, e-mail name lengths)
    /// score slightly negative from sparsity alone, and excluding them
    /// from `T⁺` would let per-language thresholds drift above the
    /// smoothing floor of unseen pairs. −0.2 keeps those sparse positives
    /// in `T⁺` while still rejecting genuinely mixed columns (true format
    /// mixes score below the −0.3 negative-pruning threshold).
    pub compat_threshold: f64,
    /// Crude-NPMI threshold for pruning accidental-compatible negatives
    /// (Appendix F uses −0.3: drop `C₂ ∪ {u}` if any `v ∈ C₂` has
    /// `NPMI(G(u), G(v)) ≥ −0.3`).
    pub negative_prune_threshold: f64,
    /// Worker threads for per-language scans.
    pub threads: usize,
    /// Seed for training-set sampling.
    pub seed: u64,
    /// When set, the *final* selected languages store co-occurrence in a
    /// count-min sketch with this fraction of their exact size
    /// (Figure 8(a): 1%, 10%, 100%=None).
    pub sketch_fraction: Option<f64>,
}

impl Default for AutoDetectConfig {
    fn default() -> Self {
        AutoDetectConfig {
            precision_target: 0.95,
            memory_budget: 64 << 20,
            npmi: NpmiParams::default(),
            stats: StatsConfig::default(),
            space: LanguageSpace::Restricted144,
            training_examples: 100_000,
            compat_threshold: -0.2,
            negative_prune_threshold: -0.3,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            seed: 0xAD7_7EA1,
            sketch_fraction: None,
        }
    }
}

impl AutoDetectConfig {
    /// A small configuration for tests and examples: coarse language
    /// space, few training examples, tight budget.
    pub fn small() -> Self {
        AutoDetectConfig {
            training_examples: 4_000,
            space: LanguageSpace::Coarse36,
            memory_budget: 16 << 20,
            ..AutoDetectConfig::default()
        }
    }

    /// The candidate languages implied by [`AutoDetectConfig::space`].
    pub fn candidate_languages(&self) -> Vec<adt_patterns::Language> {
        match self.space {
            LanguageSpace::Restricted144 => adt_patterns::enumerate_restricted_languages(),
            LanguageSpace::Coarse36 => adt_patterns::enumerate_coarse_languages(),
        }
    }

    /// The sketch spec for a language whose exact size is `exact_bytes`,
    /// honoring [`AutoDetectConfig::sketch_fraction`].
    pub fn sketch_spec_for(&self, exact_bytes: usize) -> Option<SketchSpec> {
        self.sketch_fraction.map(|frac| SketchSpec {
            budget_bytes: ((exact_bytes as f64 * frac) as usize).max(4096),
            ..SketchSpec::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_knobs() {
        let c = AutoDetectConfig::default();
        assert_eq!(c.precision_target, 0.95);
        assert_eq!(c.npmi.smoothing, 0.1);
        // Scaled-corpus relaxation of Appendix F's 0 threshold (see the
        // field docs); stays above the negative-pruning threshold.
        assert_eq!(c.compat_threshold, -0.2);
        assert!(c.compat_threshold > c.negative_prune_threshold);
        assert_eq!(c.candidate_languages().len(), 144);
    }

    #[test]
    fn small_config_uses_coarse_space() {
        assert_eq!(AutoDetectConfig::small().candidate_languages().len(), 36);
    }

    #[test]
    fn sketch_spec_scales_with_fraction() {
        let mut c = AutoDetectConfig {
            sketch_fraction: Some(0.01),
            ..AutoDetectConfig::default()
        };
        let spec = c.sketch_spec_for(10 << 20).unwrap();
        assert_eq!(spec.budget_bytes, (10 << 20) / 100);
        c.sketch_fraction = None;
        assert!(c.sketch_spec_for(10 << 20).is_none());
    }
}
