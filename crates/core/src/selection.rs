//! Language selection under a memory budget (Definition 5, Algorithm 1).
//!
//! ST aggregation reduces selection to budgeted maximum coverage over the
//! per-language covered-negative sets `H⁻_k`, which is NP-hard
//! (Theorem 2); the greedy gain-per-byte procedure of Algorithm 1, plus a
//! comparison against the best affordable singleton, achieves a
//! ½(1 − 1/e) approximation (Lemma 3). Property tests verify that bound
//! against brute force on small instances.

use serde::{Deserialize, Serialize};

/// Per-candidate summary fed into selection: coverage set and size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateSummary {
    /// Candidate identifier (index into the caller's language list).
    pub index: usize,
    /// Memory cost `size(L_k)` in bytes.
    pub size_bytes: usize,
    /// Covered incompatible training examples `H⁻_k` (indices into `T`).
    pub covered_negatives: Vec<u32>,
}

/// Result of language selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionResult {
    /// Chosen candidate indices, in greedy pick order.
    pub selected: Vec<usize>,
    /// Number of distinct negatives covered by the union.
    pub union_coverage: usize,
    /// Total size of the selected set in bytes.
    pub total_bytes: usize,
}

/// Sorted-set union size helper over u32 index sets.
fn union_size(sets: &[&[u32]]) -> usize {
    let mut all: Vec<u32> = sets.iter().flat_map(|s| s.iter().copied()).collect();
    all.sort_unstable();
    all.dedup();
    all.len()
}

/// Algorithm 1: greedy budgeted max-coverage plus best-singleton fallback.
///
/// `budget` is the memory budget `M` in bytes. Candidates whose size alone
/// exceeds the budget can never be picked. Returns the better of the
/// greedy set and the best affordable singleton.
pub fn greedy_select(candidates: &[CandidateSummary], budget: usize) -> SelectionResult {
    // Greedy phase (lines 2-7): maximize marginal coverage per byte.
    let mut chosen: Vec<usize> = Vec::new(); // positions in `candidates`
    let mut covered: Vec<u32> = Vec::new(); // sorted union of covered T- indices
    let mut used = 0usize;
    let mut remaining: Vec<usize> = (0..candidates.len()).collect();
    loop {
        remaining.retain(|&i| !chosen.contains(&i) && used + candidates[i].size_bytes <= budget);
        let mut best: Option<(usize, f64, usize)> = None; // (pos, gain_rate, gain)
        for &i in &remaining {
            let c = &candidates[i];
            let gain = c
                .covered_negatives
                .iter()
                .filter(|idx| covered.binary_search(idx).is_err())
                .count();
            // Gain per byte; size floored at 1 so free languages sort first
            // by absolute gain.
            let rate = gain as f64 / c.size_bytes.max(1) as f64;
            let better = match best {
                Some((_, r, g)) => rate > r || (rate == r && gain > g),
                None => true,
            };
            if better {
                best = Some((i, rate, gain));
            }
        }
        match best {
            Some((i, _, gain)) if gain > 0 => {
                chosen.push(i);
                used += candidates[i].size_bytes;
                covered.extend_from_slice(&candidates[i].covered_negatives);
                covered.sort_unstable();
                covered.dedup();
            }
            _ => break,
        }
    }

    // Best affordable singleton (line 8).
    let singleton = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.size_bytes <= budget)
        .max_by_key(|(_, c)| c.covered_negatives.len());

    // Compare (lines 9-12).
    let greedy_cov = covered.len();
    if let Some((si, sc)) = singleton {
        let single_cov = union_size(&[&sc.covered_negatives]);
        if single_cov > greedy_cov {
            return SelectionResult {
                selected: vec![candidates[si].index],
                union_coverage: single_cov,
                total_bytes: sc.size_bytes,
            };
        }
    }
    SelectionResult {
        selected: chosen.iter().map(|&i| candidates[i].index).collect(),
        union_coverage: greedy_cov,
        total_bytes: used,
    }
}

/// Exhaustive optimum for small instances (tests and the approximation
/// bound check); exponential in `candidates.len()`.
pub fn bruteforce_select(candidates: &[CandidateSummary], budget: usize) -> SelectionResult {
    assert!(candidates.len() <= 20, "brute force is exponential");
    let n = candidates.len();
    let mut best = SelectionResult {
        selected: Vec::new(),
        union_coverage: 0,
        total_bytes: 0,
    };
    for mask in 0u32..(1 << n) {
        let mut size = 0usize;
        let mut sets: Vec<&[u32]> = Vec::new();
        let mut idxs: Vec<usize> = Vec::new();
        for (i, c) in candidates.iter().enumerate() {
            if mask & (1 << i) != 0 {
                size += c.size_bytes;
                sets.push(&c.covered_negatives);
                idxs.push(c.index);
            }
        }
        if size > budget {
            continue;
        }
        let cov = union_size(&sets);
        if cov > best.union_coverage {
            best = SelectionResult {
                selected: idxs,
                union_coverage: cov,
                total_bytes: size,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: usize, size: usize, covered: &[u32]) -> CandidateSummary {
        CandidateSummary {
            index,
            size_bytes: size,
            covered_negatives: covered.to_vec(),
        }
    }

    #[test]
    fn paper_example5() {
        // Example 5 / Table 2: M = 500MB; L1 (200, {t6,t8,t9}),
        // L2 (300, {t7,t9,t10}), L3 (400, {t6,t7,t8,t9}).
        // Greedy picks L1 (best per-byte), then L2 (L3 would exceed 500);
        // the union {t6..t10} (5) beats the best singleton L3 (4).
        let mb = 1usize << 20;
        let candidates = vec![
            cand(0, 200 * mb, &[6, 8, 9]),
            cand(1, 300 * mb, &[7, 9, 10]),
            cand(2, 400 * mb, &[6, 7, 8, 9]),
        ];
        let r = greedy_select(&candidates, 500 * mb);
        assert_eq!(r.selected, vec![0, 1]);
        assert_eq!(r.union_coverage, 5);
        assert_eq!(r.total_bytes, 500 * mb);
    }

    #[test]
    fn singleton_beats_greedy_when_ratio_misleads() {
        // A tiny candidate with 1 coverage has the best rate; picking it
        // leaves no room for the big candidate covering 10. The singleton
        // comparison must rescue the big one.
        let candidates = vec![
            cand(0, 1, &[0]),
            cand(1, 100, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]),
        ];
        let r = greedy_select(&candidates, 100);
        assert_eq!(r.selected, vec![1]);
        assert_eq!(r.union_coverage, 10);
    }

    #[test]
    fn oversized_candidates_never_selected() {
        let candidates = vec![cand(0, 1000, &[1, 2, 3]), cand(1, 10, &[4])];
        let r = greedy_select(&candidates, 100);
        assert_eq!(r.selected, vec![1]);
    }

    #[test]
    fn empty_coverage_candidates_skipped() {
        let candidates = vec![cand(0, 10, &[]), cand(1, 10, &[1])];
        let r = greedy_select(&candidates, 100);
        assert_eq!(r.selected, vec![1]);
        assert_eq!(r.union_coverage, 1);
    }

    #[test]
    fn no_affordable_candidates() {
        let candidates = vec![cand(0, 1000, &[1])];
        let r = greedy_select(&candidates, 10);
        assert!(r.selected.is_empty());
        assert_eq!(r.union_coverage, 0);
    }

    #[test]
    fn overlapping_coverage_counted_once() {
        let candidates = vec![cand(0, 10, &[1, 2, 3]), cand(1, 10, &[2, 3, 4])];
        let r = greedy_select(&candidates, 100);
        assert_eq!(r.union_coverage, 4);
        assert_eq!(r.selected.len(), 2);
    }

    #[test]
    fn matches_bruteforce_on_small_instances() {
        // Deterministic pseudo-random instances; greedy must meet the
        // ½(1−1/e) ≈ 0.316 bound (it usually achieves the optimum).
        let mut seed = 0x12345u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _trial in 0..30 {
            let n = 3 + (next() % 6) as usize;
            let candidates: Vec<CandidateSummary> = (0..n)
                .map(|i| {
                    let size = 1 + (next() % 50) as usize;
                    let m = 1 + (next() % 6) as usize;
                    let cov: Vec<u32> = (0..m).map(|_| (next() % 15) as u32).collect();
                    cand(i, size, &cov)
                })
                .collect();
            let budget = 30 + (next() % 80) as usize;
            let greedy = greedy_select(&candidates, budget);
            let opt = bruteforce_select(&candidates, budget);
            assert!(greedy.total_bytes <= budget);
            let bound = 0.5 * (1.0 - (-1.0f64).exp()) * opt.union_coverage as f64;
            assert!(
                greedy.union_coverage as f64 >= bound,
                "greedy {} below bound {} (opt {})",
                greedy.union_coverage,
                bound,
                opt.union_coverage
            );
        }
    }
}
