//! Property tests for the corpus substrate.

use adt_corpus::{
    corrupt_value, inject_error, Column, CorpusGenerator, CorpusProfile, DomainKind, ErrorKind,
    SourceTag,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_domain() -> impl Strategy<Value = DomainKind> {
    (0..DomainKind::ALL.len()).prop_map(|i| DomainKind::ALL[i])
}

fn arb_error_kind() -> impl Strategy<Value = ErrorKind> {
    (0..ErrorKind::ALL.len()).prop_map(|i| ErrorKind::ALL[i])
}

proptest! {
    /// Corruption, when applicable, always changes the value.
    #[test]
    fn corruption_changes_the_value(
        domain in arb_domain(),
        kind in arb_error_kind(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = domain.sample(&mut rng);
        if let Some(corrupted) = corrupt_value(&value, domain, kind, &mut rng) {
            prop_assert_ne!(&corrupted, &value, "kind {:?}", kind);
            prop_assert!(!corrupted.is_empty());
        }
    }

    /// Injection labels exactly one row and leaves the rest untouched.
    #[test]
    fn injection_is_single_cell(domain in arb_domain(), seed in any::<u64>(), len in 3usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<String> = (0..len).map(|_| domain.sample(&mut rng)).collect();
        let col = Column::new(values.clone(), SourceTag::Web);
        if let Some((labeled, _kind)) = inject_error(&col, domain, &mut rng) {
            prop_assert_eq!(labeled.error_rows.len(), 1);
            let row = labeled.error_rows[0];
            prop_assert_ne!(&labeled.column.values[row], &values[row]);
            let diffs = labeled
                .column
                .values
                .iter()
                .zip(&values)
                .filter(|(a, b)| a != b)
                .count();
            prop_assert_eq!(diffs, 1);
            // The injected value is labeled an error value.
            prop_assert!(labeled.is_error_value(&labeled.column.values[row]));
        }
    }

    /// Domain samples are never empty and never contain newlines (cells
    /// must round-trip through the line-oriented corpus format).
    #[test]
    fn samples_are_single_line(domain in arb_domain(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = domain.sample(&mut rng);
        prop_assert!(!v.is_empty());
        prop_assert!(!v.contains('\n'));
        prop_assert!(!v.contains('\r'));
    }

    /// Generation from the same profile is fully reproducible, and
    /// different seeds genuinely differ.
    #[test]
    fn generator_determinism(seed in any::<u64>()) {
        let mut p = CorpusProfile::web(30);
        p.seed = seed;
        let a = CorpusGenerator::new(p.clone()).generate();
        let b = CorpusGenerator::new(p).generate();
        for (x, y) in a.columns().iter().zip(b.columns()) {
            prop_assert_eq!(&x.values, &y.values);
        }
    }
}
