//! The corpus container: a bag of columns with persistence and sampling.

use crate::column::{Column, SourceTag};
use rand::prelude::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// A corpus of table columns (the paper's `C`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    columns: Vec<Column>,
}

impl Corpus {
    /// Empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Corpus from existing columns.
    pub fn from_columns(columns: Vec<Column>) -> Self {
        Corpus { columns }
    }

    /// Adds a column.
    pub fn push(&mut self, c: Column) {
        self.columns.push(c);
    }

    /// Merges another corpus into this one (used to train on WEB ∪ Pub-XLS
    /// as the paper's default configuration does).
    pub fn extend_from(&mut self, other: Corpus) {
        self.columns.extend(other.columns);
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Total number of cells across all columns.
    pub fn total_cells(&self) -> usize {
        self.columns.iter().map(|c| c.len()).sum()
    }

    /// Splits the column index space into at most `shards` contiguous,
    /// non-overlapping ranges that cover `0..len()`. Sizes differ by at
    /// most one and the split depends only on `len()` and `shards`, so
    /// shard-parallel scans stay deterministic work units.
    pub fn shard_ranges(&self, shards: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.columns.len();
        let shards = shards.max(1).min(n.max(1));
        if n == 0 {
            return Vec::new();
        }
        let base = n / shards;
        let extra = n % shards;
        let mut out = Vec::with_capacity(shards);
        let mut start = 0;
        for i in 0..shards {
            let len = base + usize::from(i < extra);
            out.push(start..start + len);
            start += len;
        }
        out
    }

    /// Uniform random sample of `n` columns (without replacement when
    /// possible); deterministic given the RNG.
    pub fn sample<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<&Column> {
        if n >= self.columns.len() {
            return self.columns.iter().collect();
        }
        let mut idx: Vec<usize> = (0..self.columns.len()).collect();
        // Partial Fisher-Yates: shuffle only the prefix we need.
        for i in 0..n {
            let j = rng.random_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..n].iter().map(|&i| &self.columns[i]).collect()
    }

    /// One uniformly random column.
    pub fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Column> {
        self.columns.choose(rng)
    }

    /// Writes the corpus in a newline-oriented text format:
    /// each column is `#column <source>` followed by one escaped value per
    /// line, terminated by a blank line.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        let mut w = BufWriter::new(f);
        for c in &self.columns {
            writeln!(w, "#column {}", source_tag_str(c.source))?;
            if let Some(h) = &c.header {
                writeln!(w, "#header {}", escape(h))?;
            }
            for v in &c.values {
                writeln!(w, "{}", escape(v))?;
            }
            writeln!(w)?;
        }
        w.flush()
    }

    /// Reads a corpus written by [`Corpus::save`].
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let f = std::fs::File::open(path)?;
        let r = io::BufReader::new(f);
        let mut corpus = Corpus::new();
        let mut cur: Option<Column> = None;
        for line in r.lines() {
            let line = line?;
            if let Some(rest) = line.strip_prefix("#column ") {
                if let Some(c) = cur.take() {
                    corpus.push(c);
                }
                cur = Some(Column::new(Vec::new(), parse_source_tag(rest)));
            } else if let Some(rest) = line.strip_prefix("#header ") {
                if let Some(c) = cur.as_mut() {
                    c.header = Some(unescape(rest));
                }
            } else if line.is_empty() {
                if let Some(c) = cur.take() {
                    corpus.push(c);
                }
            } else if let Some(c) = cur.as_mut() {
                c.values.push(unescape(&line));
            }
        }
        if let Some(c) = cur.take() {
            corpus.push(c);
        }
        Ok(corpus)
    }
}

fn source_tag_str(t: SourceTag) -> &'static str {
    match t {
        SourceTag::Web => "web",
        SourceTag::Wiki => "wiki",
        SourceTag::PubXls => "pubxls",
        SourceTag::EntXls => "entxls",
        SourceTag::Csv => "csv",
        SourceTag::Local => "local",
    }
}

fn parse_source_tag(s: &str) -> SourceTag {
    match s {
        "wiki" => SourceTag::Wiki,
        "pubxls" => SourceTag::PubXls,
        "entxls" => SourceTag::EntXls,
        "csv" => SourceTag::Csv,
        "local" => SourceTag::Local,
        _ => SourceTag::Web,
    }
}

/// Escapes newlines, backslashes, and a leading `#` so values round-trip
/// through the line-oriented format.
fn escape(s: &str) -> String {
    if s.is_empty() {
        // A blank line terminates a column, so the empty value needs a
        // dedicated escape.
        return "\\e".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    if out.starts_with('#') {
        out.insert(0, '\\');
    }
    out
}

fn unescape(s: &str) -> String {
    if s == "\\e" {
        return String::new();
    }
    let s = s
        .strip_prefix("\\#")
        .map(|r| format!("#{r}"))
        .unwrap_or_else(|| s.to_string());
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_and_stats() {
        let mut c = Corpus::new();
        c.push(Column::from_strs(&["a", "b"], SourceTag::Web));
        c.push(Column::from_strs(&["1", "2", "3"], SourceTag::Wiki));
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_cells(), 5);
        assert!(!c.is_empty());
    }

    #[test]
    fn shard_ranges_cover_and_balance() {
        let mut c = Corpus::new();
        for i in 0..13 {
            c.push(Column::from_strs(&[&i.to_string()], SourceTag::Web));
        }
        for shards in [1, 2, 3, 5, 13, 64] {
            let ranges = c.shard_ranges(shards);
            assert!(ranges.len() <= shards.max(1));
            let mut covered = 0;
            let mut expect_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expect_start, "ranges must be contiguous");
                expect_start = r.end;
                covered += r.len();
            }
            assert_eq!(covered, 13);
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            assert!(max - min <= 1, "unbalanced shards: {ranges:?}");
        }
        assert!(Corpus::new().shard_ranges(4).is_empty());
    }

    #[test]
    fn sample_without_replacement() {
        let mut c = Corpus::new();
        for i in 0..100 {
            c.push(Column::from_strs(&[&i.to_string()], SourceTag::Web));
        }
        let mut rng = StdRng::seed_from_u64(7);
        let s = c.sample(10, &mut rng);
        assert_eq!(s.len(), 10);
        let mut firsts: Vec<&str> = s.iter().map(|c| c.values[0].as_str()).collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 10, "sampling must be without replacement");
    }

    #[test]
    fn sample_more_than_available_returns_all() {
        let mut c = Corpus::new();
        c.push(Column::from_strs(&["a"], SourceTag::Web));
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(c.sample(10, &mut rng).len(), 1);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("adt_corpus_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cor");
        let mut c = Corpus::new();
        let mut col = Column::from_strs(&["a\\b", "line\nbreak", "#hash", ""], SourceTag::EntXls);
        col.header = Some("My Header".into());
        c.push(col);
        c.push(Column::from_strs(&["plain"], SourceTag::Csv));
        c.save(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.columns()[0].header.as_deref(), Some("My Header"));
        assert_eq!(back.columns()[0].values, c.columns()[0].values);
        assert_eq!(back.columns()[1].source, SourceTag::Csv);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn escape_roundtrip() {
        for s in ["", "#x", "\\", "a\\nb", "\n", "normal"] {
            assert_eq!(unescape(&escape(s)), s, "failed for {s:?}");
        }
    }

    #[test]
    fn merge_corpora() {
        let mut a = Corpus::from_columns(vec![Column::from_strs(&["1"], SourceTag::Web)]);
        let b = Corpus::from_columns(vec![Column::from_strs(&["2"], SourceTag::PubXls)]);
        a.extend_from(b);
        assert_eq!(a.len(), 2);
    }
}
