//! Mix groups: which domains legitimately co-occur inside one column.
//!
//! This is the load-bearing piece of the corpus substitution (DESIGN.md §1).
//! The paper's motivating observations are that, across a large clean
//! corpus,
//!
//! * plain integers co-occur with `1,000`-style separated numbers
//!   (2.2M real columns) and with floats (1.8M columns) — so those must
//!   *not* be flagged, while
//! * `\d{4}-\d{2}-\d{2}` and `\d{4}/\d{2}/\d{2}` dates almost never share a
//!   column — so a mix *is* an error.
//!
//! Each [`MixGroup`] lists the domains a clean column may draw from,
//! with weights. Strict-format domains (each date format, each phone
//! format) get singleton groups; known-to-mix domains share groups.

use crate::domains::DomainKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a mix group in the [`registry`].
pub type MixGroupId = usize;

/// A set of domains that legitimately co-occur within one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixGroup {
    /// Stable name for reports and profiles.
    pub name: &'static str,
    /// (domain, weight) mixture; weights need not sum to 1.
    pub domains: Vec<(DomainKind, f64)>,
    /// Relative frequency of this group among corpus columns (base weight;
    /// profiles can rescale it).
    pub base_weight: f64,
}

impl MixGroup {
    fn new(name: &'static str, base_weight: f64, domains: &[(DomainKind, f64)]) -> Self {
        MixGroup {
            name,
            domains: domains.to_vec(),
            base_weight,
        }
    }

    /// Singleton group holding one domain.
    fn solo(name: &'static str, base_weight: f64, d: DomainKind) -> Self {
        MixGroup::new(name, base_weight, &[(d, 1.0)])
    }

    /// Samples a domain from the group's mixture.
    pub fn sample_domain<R: Rng>(&self, rng: &mut R) -> DomainKind {
        let total: f64 = self.domains.iter().map(|&(_, w)| w).sum();
        let mut x = rng.random_range(0.0..total);
        for &(d, w) in &self.domains {
            if x < w {
                return d;
            }
            x -= w;
        }
        self.domains.last().expect("group non-empty").0
    }

    /// The dominant (highest-weight) domain of the group.
    pub fn dominant_domain(&self) -> DomainKind {
        self.domains
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("group non-empty")
            .0
    }
}

/// The full mix-group registry.
///
/// Ordering is fixed; [`MixGroupId`] indexes into this vector.
pub fn registry() -> Vec<MixGroup> {
    use DomainKind::*;
    vec![
        // --- numbers that legitimately mix (the paper's Col-1 / Col-2) ---
        MixGroup::new(
            "int_mix",
            10.0,
            &[
                (SmallInt, 0.60),
                (MediumInt, 0.25),
                (SeparatedInt, 0.10),
                (Float2, 0.05),
            ],
        ),
        MixGroup::new(
            "float_mix",
            6.0,
            &[(Float2, 0.70), (Float1, 0.20), (MediumInt, 0.10)],
        ),
        MixGroup::new(
            "big_numbers",
            4.0,
            &[(SeparatedInt, 0.75), (MediumInt, 0.25)],
        ),
        MixGroup::solo("signed", 1.0, SignedInt),
        MixGroup::new("percent", 2.5, &[(Percent, 0.6), (PercentDecimal, 0.4)]),
        MixGroup::new(
            "currency",
            3.0,
            &[(CurrencyUsd, 0.92), (ParenNegative, 0.08)],
        ),
        MixGroup::solo("currency_plain", 1.0, CurrencyPlain),
        MixGroup::solo("ordinal", 1.0, Ordinal),
        MixGroup::solo("scientific", 0.5, Scientific),
        // --- dates: one strict group per format ---
        MixGroup::solo("date_iso", 5.0, DateIso),
        MixGroup::solo("date_slash_ymd", 2.5, DateSlashYmd),
        MixGroup::solo("date_dot_ymd", 1.5, DateDotYmd),
        MixGroup::solo("date_dmy_slash", 2.5, DateDmySlash),
        MixGroup::solo("date_dmy_dash", 1.5, DateDmyDash),
        MixGroup::solo("date_month_d_y", 2.0, DateMonthDY),
        MixGroup::solo("date_d_mon_y", 1.5, DateDMonY),
        MixGroup::solo("date_mon_yy", 1.0, DateMonYy),
        MixGroup::solo("year_month", 1.5, YearMonthDash),
        MixGroup::new("year", 5.0, &[(Year, 0.95), (YearRange, 0.05)]),
        MixGroup::solo("month_name", 1.5, MonthName),
        // --- times & durations ---
        MixGroup::solo("time_hm", 2.0, TimeHm),
        MixGroup::solo("time_hms", 1.0, TimeHms),
        MixGroup::new("duration", 2.0, &[(DurationMs, 0.85), (DurationHms, 0.15)]),
        // --- scores (mix with placeholders, per Figure 1(d)) ---
        MixGroup::new("score_dash", 2.0, &[(ScoreDash, 0.93), (Placeholder, 0.07)]),
        MixGroup::solo("score_colon", 1.0, ScoreColon),
        // --- text ---
        MixGroup::solo("word_lower", 3.0, WordLower),
        MixGroup::new("cities", 3.0, &[(WordCapital, 0.7), (TwoWordsCap, 0.3)]),
        MixGroup::solo("person_name", 2.5, PersonName),
        MixGroup::solo("name_comma", 1.5, NameComma),
        MixGroup::solo("acronym", 1.5, UpperAcronym),
        // --- codes ---
        MixGroup::solo("alnum_code", 2.0, AlnumCode),
        MixGroup::solo("zip", 1.5, ZipUs),
        MixGroup::solo("zip_plus4", 0.8, ZipPlus4),
        MixGroup::solo("phone_paren", 1.5, PhoneParen),
        MixGroup::solo("phone_dash", 1.2, PhoneDash),
        MixGroup::solo("phone_intl", 0.8, PhoneIntl),
        MixGroup::solo("isbn", 0.8, Isbn),
        MixGroup::solo("ipv4", 1.0, IpV4),
        // --- web ---
        MixGroup::solo("email", 1.5, Email),
        MixGroup::solo("url", 1.2, Url),
        MixGroup::solo("domain", 0.8, DomainName),
        // --- misc ---
        MixGroup::new("bool", 1.5, &[(BoolYesNo, 0.96), (Placeholder, 0.04)]),
        MixGroup::solo("grade", 1.0, Grade),
        MixGroup::solo("version", 1.0, Version),
        MixGroup::solo("coordinate", 0.8, Coordinate),
        MixGroup::solo("weight_kg", 1.0, WeightKg),
        MixGroup::solo("weight_lb", 0.6, WeightLb),
    ]
}

/// Looks up a group id by name.
pub fn group_id_by_name(groups: &[MixGroup], name: &str) -> Option<MixGroupId> {
    groups.iter().position(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn registry_names_unique() {
        let groups = registry();
        let mut names: Vec<&str> = groups.iter().map(|g| g.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn every_group_nonempty_with_positive_weights() {
        for g in registry() {
            assert!(!g.domains.is_empty(), "{} empty", g.name);
            assert!(g.base_weight > 0.0);
            for (_, w) in &g.domains {
                assert!(*w > 0.0);
            }
        }
    }

    #[test]
    fn int_mix_contains_paper_col1_col2_domains() {
        let groups = registry();
        let g = &groups[group_id_by_name(&groups, "int_mix").unwrap()];
        let doms: Vec<DomainKind> = g.domains.iter().map(|&(d, _)| d).collect();
        assert!(doms.contains(&DomainKind::SmallInt));
        assert!(doms.contains(&DomainKind::SeparatedInt));
        assert!(doms.contains(&DomainKind::Float2));
    }

    #[test]
    fn date_formats_never_share_a_group() {
        use DomainKind::*;
        let date_domains = [
            DateIso,
            DateSlashYmd,
            DateDotYmd,
            DateDmySlash,
            DateDmyDash,
            DateMonthDY,
            DateDMonY,
            DateMonYy,
        ];
        for g in registry() {
            let n = g
                .domains
                .iter()
                .filter(|(d, _)| date_domains.contains(d))
                .count();
            assert!(n <= 1, "group {} mixes date formats", g.name);
        }
    }

    #[test]
    fn sample_domain_respects_membership() {
        let groups = registry();
        let mut rng = StdRng::seed_from_u64(9);
        for g in &groups {
            for _ in 0..20 {
                let d = g.sample_domain(&mut rng);
                assert!(g.domains.iter().any(|&(gd, _)| gd == d));
            }
        }
    }

    #[test]
    fn dominant_domain_is_max_weight() {
        let groups = registry();
        let g = &groups[group_id_by_name(&groups, "int_mix").unwrap()];
        assert_eq!(g.dominant_domain(), DomainKind::SmallInt);
    }
}
