//! Date, time, and duration value generators.

use rand::prelude::IndexedRandom;
use rand::Rng;

pub(crate) const MONTHS: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

pub(crate) const MONTHS_ABBR: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

fn ymd<R: Rng>(rng: &mut R) -> (u32, u32, u32) {
    (
        rng.random_range(1900..=2025),
        rng.random_range(1..=12),
        rng.random_range(1..=28),
    )
}

pub fn date_iso<R: Rng>(rng: &mut R) -> String {
    let (y, m, d) = ymd(rng);
    format!("{y:04}-{m:02}-{d:02}")
}

pub fn date_slash_ymd<R: Rng>(rng: &mut R) -> String {
    let (y, m, d) = ymd(rng);
    format!("{y:04}/{m:02}/{d:02}")
}

pub fn date_dot_ymd<R: Rng>(rng: &mut R) -> String {
    let (y, m, d) = ymd(rng);
    format!("{y:04}.{m:02}.{d:02}")
}

pub fn date_dmy_slash<R: Rng>(rng: &mut R) -> String {
    let (y, m, d) = ymd(rng);
    format!("{d:02}/{m:02}/{y:04}")
}

pub fn date_dmy_dash<R: Rng>(rng: &mut R) -> String {
    let (y, m, d) = ymd(rng);
    format!("{d:02}-{m:02}-{y:04}")
}

pub fn date_month_d_y<R: Rng>(rng: &mut R) -> String {
    let (y, m, d) = ymd(rng);
    format!("{} {d}, {y}", MONTHS[(m - 1) as usize])
}

pub fn date_d_mon_y<R: Rng>(rng: &mut R) -> String {
    let (y, m, d) = ymd(rng);
    format!("{d} {} {y}", MONTHS_ABBR[(m - 1) as usize])
}

pub fn date_mon_yy<R: Rng>(rng: &mut R) -> String {
    let (y, m, _) = ymd(rng);
    format!("{}-{:02}", MONTHS_ABBR[(m - 1) as usize], y % 100)
}

pub fn year_month_dash<R: Rng>(rng: &mut R) -> String {
    let (y, m, _) = ymd(rng);
    format!("{y:04}-{m:02}")
}

pub fn year<R: Rng>(rng: &mut R) -> String {
    format!("{}", rng.random_range(1800..=2025))
}

pub fn year_range<R: Rng>(rng: &mut R) -> String {
    let y = rng.random_range(1900..=2024);
    format!("{}-{:02}", y, (y + 1) % 100)
}

pub fn month_name<R: Rng>(rng: &mut R) -> String {
    (*MONTHS.choose(rng).expect("non-empty")).to_string()
}

pub fn time_hm<R: Rng>(rng: &mut R) -> String {
    format!(
        "{:02}:{:02}",
        rng.random_range(0..24),
        rng.random_range(0..60)
    )
}

pub fn time_hms<R: Rng>(rng: &mut R) -> String {
    format!(
        "{:02}:{:02}:{:02}",
        rng.random_range(0..24),
        rng.random_range(0..60),
        rng.random_range(0..60)
    )
}

pub fn duration_ms<R: Rng>(rng: &mut R) -> String {
    format!("{}:{:02}", rng.random_range(0..10), rng.random_range(0..60))
}

pub fn duration_hms<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}:{:02}:{:02}",
        rng.random_range(1..4),
        rng.random_range(0..60),
        rng.random_range(0..60)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn iso_shape() {
        let mut r = rng();
        for _ in 0..50 {
            let v = date_iso(&mut r);
            assert_eq!(v.len(), 10);
            assert_eq!(&v[4..5], "-");
            assert_eq!(&v[7..8], "-");
        }
    }

    #[test]
    fn slash_vs_iso_differ_only_in_separator() {
        let mut a = rng();
        let mut b = rng();
        let x = date_iso(&mut a);
        let y = date_slash_ymd(&mut b);
        assert_eq!(x.replace('-', "/"), y);
    }

    #[test]
    fn month_d_y_contains_comma_and_month() {
        let mut r = rng();
        let v = date_month_d_y(&mut r);
        assert!(v.contains(','));
        assert!(MONTHS.iter().any(|m| v.starts_with(m)));
    }

    #[test]
    fn durations_have_colon() {
        let mut r = rng();
        assert!(duration_ms(&mut r).contains(':'));
        assert_eq!(duration_hms(&mut r).matches(':').count(), 2);
    }

    #[test]
    fn year_in_range() {
        let mut r = rng();
        for _ in 0..50 {
            let y: u32 = year(&mut r).parse().unwrap();
            assert!((1800..=2025).contains(&y));
        }
    }
}
