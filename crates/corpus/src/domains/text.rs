//! Word and name generators.

use rand::prelude::IndexedRandom;
use rand::Rng;

const WORDS: [&str; 40] = [
    "apple", "river", "stone", "cloud", "maple", "amber", "birch", "cedar", "delta", "ember",
    "frost", "grove", "haven", "iris", "jade", "karst", "lotus", "mesa", "noble", "ocean", "pearl",
    "quartz", "ridge", "sage", "tidal", "umbra", "vale", "willow", "xenon", "yarrow", "zephyr",
    "basin", "crest", "dune", "fjord", "glade", "heath", "inlet", "knoll", "marsh",
];

const CITIES: [&str; 24] = [
    "London",
    "Paris",
    "Berlin",
    "Madrid",
    "Rome",
    "Vienna",
    "Prague",
    "Dublin",
    "Lisbon",
    "Athens",
    "Oslo",
    "Helsinki",
    "Warsaw",
    "Budapest",
    "Brussels",
    "Amsterdam",
    "Zurich",
    "Geneva",
    "Munich",
    "Hamburg",
    "Milan",
    "Naples",
    "Porto",
    "Seville",
];

const CITY_PAIRS: [&str; 16] = [
    "New York",
    "Los Angeles",
    "San Francisco",
    "Hong Kong",
    "Rio Grande",
    "Cape Town",
    "Buenos Aires",
    "Kuala Lumpur",
    "San Diego",
    "Las Vegas",
    "New Delhi",
    "Tel Aviv",
    "Abu Dhabi",
    "Addis Ababa",
    "Santa Fe",
    "Saint Paul",
];

const FIRST_NAMES: [&str; 20] = [
    "John", "Jane", "Alice", "Robert", "Maria", "David", "Laura", "James", "Emma", "Michael",
    "Sofia", "Daniel", "Olivia", "Thomas", "Julia", "Peter", "Anna", "Mark", "Clara", "Paul",
];

const LAST_NAMES: [&str; 20] = [
    "Smith", "Johnson", "Brown", "Taylor", "Anderson", "Thomas", "Jackson", "White", "Harris",
    "Martin", "Garcia", "Martinez", "Robinson", "Clark", "Lewis", "Lee", "Walker", "Hall", "Young",
    "King",
];

const ACRONYMS: [&str; 16] = [
    "USA", "NBA", "FIFA", "NASA", "WHO", "IMF", "EU", "UN", "CEO", "CFO", "GDP", "API", "SQL",
    "XML", "PDF", "ISO",
];

pub fn word_lower<R: Rng>(rng: &mut R) -> String {
    (*WORDS.choose(rng).expect("non-empty")).to_string()
}

pub fn word_capital<R: Rng>(rng: &mut R) -> String {
    (*CITIES.choose(rng).expect("non-empty")).to_string()
}

pub fn two_words_cap<R: Rng>(rng: &mut R) -> String {
    (*CITY_PAIRS.choose(rng).expect("non-empty")).to_string()
}

pub fn person_name<R: Rng>(rng: &mut R) -> String {
    format!(
        "{} {}",
        FIRST_NAMES.choose(rng).expect("non-empty"),
        LAST_NAMES.choose(rng).expect("non-empty")
    )
}

pub fn name_comma<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}, {}",
        LAST_NAMES.choose(rng).expect("non-empty"),
        FIRST_NAMES.choose(rng).expect("non-empty")
    )
}

pub fn upper_acronym<R: Rng>(rng: &mut R) -> String {
    (*ACRONYMS.choose(rng).expect("non-empty")).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn words_all_lowercase() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let w = word_lower(&mut r);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn capitals_start_upper() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let w = word_capital(&mut r);
            assert!(w.chars().next().unwrap().is_ascii_uppercase());
            assert!(!w.contains(' '));
        }
    }

    #[test]
    fn two_words_have_space() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(two_words_cap(&mut r).contains(' '));
    }

    #[test]
    fn name_comma_format() {
        let mut r = StdRng::seed_from_u64(3);
        let n = name_comma(&mut r);
        assert!(n.contains(", "));
    }

    #[test]
    fn acronyms_all_upper() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            assert!(upper_acronym(&mut r)
                .chars()
                .all(|c| c.is_ascii_uppercase()));
        }
    }
}
