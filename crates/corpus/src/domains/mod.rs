//! Value-domain generators.
//!
//! Each [`DomainKind`] produces realistic cell values of one syntactic
//! shape. Domains are grouped into [`Family`]s: two domains of the same
//! family carry the *same semantics in different formats* (e.g. ISO dates
//! vs slash dates), which is exactly the confusion the paper's error
//! classes exploit — a format-swap error replaces a value with one from a
//! sibling domain of the same family.

mod codes;
mod datetime;
mod misc;
mod numeric;
mod text;
mod web;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Semantic family of a domain; used to pick plausible format-swap errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    Date,
    Time,
    Integer,
    Decimal,
    Currency,
    Percent,
    Phone,
    Score,
    Duration,
    Word,
    Name,
    Code,
    Email,
    Url,
    Ip,
    Zip,
    Bool,
    Grade,
    Version,
    Coordinate,
    Unit,
    Placeholder,
    Month,
    Ordinal,
}

/// All value domains produced by the synthetic corpus generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainKind {
    // Dates in distinct formats (same family, never mixed within a column).
    DateIso,       // 2011-01-01
    DateSlashYmd,  // 2011/01/01
    DateDotYmd,    // 2011.01.02
    DateDmySlash,  // 27/11/2009
    DateDmyDash,   // 27-11-2009
    DateMonthDY,   // August 16, 1983
    DateDMonY,     // 16 Aug 1983
    DateMonYy,     // Jul-99
    YearMonthDash, // 2014-01
    Year,          // 1983
    YearRange,     // 1983-84
    MonthName,     // July
    TimeHm,        // 12:45
    TimeHms,       // 12:45:30
    DurationMs,    // 3:45  (song length)
    DurationHms,   // 1:02:33
    // Numbers.
    SmallInt,       // 0..999
    MediumInt,      // 0..99999, no separators
    SeparatedInt,   // 1,234,567
    Float1,         // 3.5
    Float2,         // 12.34
    SignedInt,      // -12
    Percent,        // 12%
    PercentDecimal, // 3.5%
    CurrencyUsd,    // $1,234.56
    CurrencyPlain,  // 1234.56 USD
    ParenNegative,  // (1,234)
    Ordinal,        // 1st, 22nd
    Scientific,     // 1.2e5
    // Text.
    WordLower,    // apple
    WordCapital,  // London
    TwoWordsCap,  // New York
    PersonName,   // John Smith
    NameComma,    // Smith, John
    UpperAcronym, // USA
    // Codes & identifiers.
    AlnumCode,  // AB-1234
    ZipUs,      // 98052
    ZipPlus4,   // 98052-1234
    PhoneParen, // (425) 555-0123
    PhoneDash,  // 425-555-0123
    PhoneIntl,  // +1 425 555 0123
    Isbn,       // 978-3-16-148410-0
    IpV4,       // 192.168.0.1
    // Web.
    Email,      // jane@example.com
    Url,        // http://example.com/page
    DomainName, // example.org
    // Misc.
    ScoreDash,   // 2-1
    ScoreColon,  // 2:1
    Placeholder, // N/A, -, TBD
    BoolYesNo,   // Yes / No
    Grade,       // A+, B-
    Version,     // 1.2.3
    Coordinate,  // 47.6062, -122.3321
    WeightKg,    // 76 kg
    WeightLb,    // 168 lb
}

impl DomainKind {
    /// All domains, in a fixed order.
    pub const ALL: [DomainKind; 55] = [
        DomainKind::DateIso,
        DomainKind::DateSlashYmd,
        DomainKind::DateDotYmd,
        DomainKind::DateDmySlash,
        DomainKind::DateDmyDash,
        DomainKind::DateMonthDY,
        DomainKind::DateDMonY,
        DomainKind::DateMonYy,
        DomainKind::YearMonthDash,
        DomainKind::Year,
        DomainKind::YearRange,
        DomainKind::MonthName,
        DomainKind::TimeHm,
        DomainKind::TimeHms,
        DomainKind::DurationMs,
        DomainKind::DurationHms,
        DomainKind::SmallInt,
        DomainKind::MediumInt,
        DomainKind::SeparatedInt,
        DomainKind::Float1,
        DomainKind::Float2,
        DomainKind::SignedInt,
        DomainKind::Percent,
        DomainKind::PercentDecimal,
        DomainKind::CurrencyUsd,
        DomainKind::CurrencyPlain,
        DomainKind::ParenNegative,
        DomainKind::Ordinal,
        DomainKind::Scientific,
        DomainKind::WordLower,
        DomainKind::WordCapital,
        DomainKind::TwoWordsCap,
        DomainKind::PersonName,
        DomainKind::NameComma,
        DomainKind::UpperAcronym,
        DomainKind::AlnumCode,
        DomainKind::ZipUs,
        DomainKind::ZipPlus4,
        DomainKind::PhoneParen,
        DomainKind::PhoneDash,
        DomainKind::PhoneIntl,
        DomainKind::Isbn,
        DomainKind::IpV4,
        DomainKind::Email,
        DomainKind::Url,
        DomainKind::DomainName,
        DomainKind::ScoreDash,
        DomainKind::ScoreColon,
        DomainKind::Placeholder,
        DomainKind::BoolYesNo,
        DomainKind::Grade,
        DomainKind::Version,
        DomainKind::Coordinate,
        DomainKind::WeightKg,
        DomainKind::WeightLb,
    ];

    /// Samples one value of this domain.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> String {
        use DomainKind::*;
        match self {
            DateIso => datetime::date_iso(rng),
            DateSlashYmd => datetime::date_slash_ymd(rng),
            DateDotYmd => datetime::date_dot_ymd(rng),
            DateDmySlash => datetime::date_dmy_slash(rng),
            DateDmyDash => datetime::date_dmy_dash(rng),
            DateMonthDY => datetime::date_month_d_y(rng),
            DateDMonY => datetime::date_d_mon_y(rng),
            DateMonYy => datetime::date_mon_yy(rng),
            YearMonthDash => datetime::year_month_dash(rng),
            Year => datetime::year(rng),
            YearRange => datetime::year_range(rng),
            MonthName => datetime::month_name(rng),
            TimeHm => datetime::time_hm(rng),
            TimeHms => datetime::time_hms(rng),
            DurationMs => datetime::duration_ms(rng),
            DurationHms => datetime::duration_hms(rng),
            SmallInt => numeric::small_int(rng),
            MediumInt => numeric::medium_int(rng),
            SeparatedInt => numeric::separated_int(rng),
            Float1 => numeric::float1(rng),
            Float2 => numeric::float2(rng),
            SignedInt => numeric::signed_int(rng),
            Percent => numeric::percent(rng),
            PercentDecimal => numeric::percent_decimal(rng),
            CurrencyUsd => numeric::currency_usd(rng),
            CurrencyPlain => numeric::currency_plain(rng),
            ParenNegative => numeric::paren_negative(rng),
            Ordinal => numeric::ordinal(rng),
            Scientific => numeric::scientific(rng),
            WordLower => text::word_lower(rng),
            WordCapital => text::word_capital(rng),
            TwoWordsCap => text::two_words_cap(rng),
            PersonName => text::person_name(rng),
            NameComma => text::name_comma(rng),
            UpperAcronym => text::upper_acronym(rng),
            AlnumCode => codes::alnum_code(rng),
            ZipUs => codes::zip_us(rng),
            ZipPlus4 => codes::zip_plus4(rng),
            PhoneParen => codes::phone_paren(rng),
            PhoneDash => codes::phone_dash(rng),
            PhoneIntl => codes::phone_intl(rng),
            Isbn => codes::isbn(rng),
            IpV4 => codes::ipv4(rng),
            Email => web::email(rng),
            Url => web::url(rng),
            DomainName => web::domain_name(rng),
            ScoreDash => misc::score_dash(rng),
            ScoreColon => misc::score_colon(rng),
            Placeholder => misc::placeholder(rng),
            BoolYesNo => misc::bool_yes_no(rng),
            Grade => misc::grade(rng),
            Version => misc::version(rng),
            Coordinate => misc::coordinate(rng),
            WeightKg => misc::weight_kg(rng),
            WeightLb => misc::weight_lb(rng),
        }
    }

    /// Semantic family (drives format-swap error injection).
    pub fn family(&self) -> Family {
        use DomainKind::*;
        match self {
            DateIso | DateSlashYmd | DateDotYmd | DateDmySlash | DateDmyDash | DateMonthDY
            | DateDMonY | DateMonYy | YearMonthDash | Year | YearRange => Family::Date,
            MonthName => Family::Month,
            TimeHm | TimeHms => Family::Time,
            DurationMs | DurationHms => Family::Duration,
            SmallInt | MediumInt | SeparatedInt | SignedInt => Family::Integer,
            Float1 | Float2 | Scientific => Family::Decimal,
            Percent | PercentDecimal => Family::Percent,
            CurrencyUsd | CurrencyPlain | ParenNegative => Family::Currency,
            Ordinal => Family::Ordinal,
            WordLower | WordCapital | TwoWordsCap | UpperAcronym => Family::Word,
            PersonName | NameComma => Family::Name,
            AlnumCode | Isbn => Family::Code,
            ZipUs | ZipPlus4 => Family::Zip,
            PhoneParen | PhoneDash | PhoneIntl => Family::Phone,
            IpV4 => Family::Ip,
            Email => Family::Email,
            Url | DomainName => Family::Url,
            ScoreDash | ScoreColon => Family::Score,
            Placeholder => Family::Placeholder,
            BoolYesNo => Family::Bool,
            Grade => Family::Grade,
            Version => Family::Version,
            Coordinate => Family::Coordinate,
            WeightKg | WeightLb => Family::Unit,
        }
    }

    /// Sibling domains: same family, different format. Used by the
    /// format-swap error injector.
    pub fn siblings(&self) -> Vec<DomainKind> {
        DomainKind::ALL
            .iter()
            .copied()
            .filter(|d| d != self && d.family() == self.family())
            .collect()
    }

    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        use DomainKind::*;
        match self {
            DateIso => "date_iso",
            DateSlashYmd => "date_slash_ymd",
            DateDotYmd => "date_dot_ymd",
            DateDmySlash => "date_dmy_slash",
            DateDmyDash => "date_dmy_dash",
            DateMonthDY => "date_month_d_y",
            DateDMonY => "date_d_mon_y",
            DateMonYy => "date_mon_yy",
            YearMonthDash => "year_month",
            Year => "year",
            YearRange => "year_range",
            MonthName => "month_name",
            TimeHm => "time_hm",
            TimeHms => "time_hms",
            DurationMs => "duration_ms",
            DurationHms => "duration_hms",
            SmallInt => "small_int",
            MediumInt => "medium_int",
            SeparatedInt => "separated_int",
            Float1 => "float1",
            Float2 => "float2",
            SignedInt => "signed_int",
            Percent => "percent",
            PercentDecimal => "percent_decimal",
            CurrencyUsd => "currency_usd",
            CurrencyPlain => "currency_plain",
            ParenNegative => "paren_negative",
            Ordinal => "ordinal",
            Scientific => "scientific",
            WordLower => "word_lower",
            WordCapital => "word_capital",
            TwoWordsCap => "two_words_cap",
            PersonName => "person_name",
            NameComma => "name_comma",
            UpperAcronym => "upper_acronym",
            AlnumCode => "alnum_code",
            ZipUs => "zip_us",
            ZipPlus4 => "zip_plus4",
            PhoneParen => "phone_paren",
            PhoneDash => "phone_dash",
            PhoneIntl => "phone_intl",
            Isbn => "isbn",
            IpV4 => "ipv4",
            Email => "email",
            Url => "url",
            DomainName => "domain_name",
            ScoreDash => "score_dash",
            ScoreColon => "score_colon",
            Placeholder => "placeholder",
            BoolYesNo => "bool_yes_no",
            Grade => "grade",
            Version => "version",
            Coordinate => "coordinate",
            WeightKg => "weight_kg",
            WeightLb => "weight_lb",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_domain_samples_nonempty() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in DomainKind::ALL {
            for _ in 0..20 {
                let v = d.sample(&mut rng);
                assert!(!v.is_empty(), "{} produced empty value", d.name());
            }
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = DomainKind::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn date_formats_are_siblings() {
        let sibs = DomainKind::DateIso.siblings();
        assert!(sibs.contains(&DomainKind::DateSlashYmd));
        assert!(sibs.contains(&DomainKind::DateDotYmd));
        assert!(!sibs.contains(&DomainKind::DateIso));
        assert!(!sibs.contains(&DomainKind::TimeHm));
    }

    #[test]
    fn phone_formats_are_siblings() {
        let sibs = DomainKind::PhoneParen.siblings();
        assert_eq!(sibs.len(), 2);
        assert!(sibs.contains(&DomainKind::PhoneDash));
        assert!(sibs.contains(&DomainKind::PhoneIntl));
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for d in DomainKind::ALL {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
