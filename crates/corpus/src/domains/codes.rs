//! Code, identifier, phone, and address-fragment generators.

use rand::Rng;

pub fn alnum_code<R: Rng>(rng: &mut R) -> String {
    let a = rng.random_range(b'A'..=b'Z') as char;
    let b = rng.random_range(b'A'..=b'Z') as char;
    format!("{a}{b}-{:04}", rng.random_range(0..10_000u32))
}

pub fn zip_us<R: Rng>(rng: &mut R) -> String {
    format!("{:05}", rng.random_range(501..99_951u32))
}

pub fn zip_plus4<R: Rng>(rng: &mut R) -> String {
    format!(
        "{:05}-{:04}",
        rng.random_range(501..99_951u32),
        rng.random_range(0..10_000u32)
    )
}

fn phone_parts<R: Rng>(rng: &mut R) -> (u32, u32, u32) {
    (
        rng.random_range(200..1000u32),
        rng.random_range(200..1000u32),
        rng.random_range(0..10_000u32),
    )
}

pub fn phone_paren<R: Rng>(rng: &mut R) -> String {
    let (a, b, c) = phone_parts(rng);
    format!("({a}) {b}-{c:04}")
}

pub fn phone_dash<R: Rng>(rng: &mut R) -> String {
    let (a, b, c) = phone_parts(rng);
    format!("{a}-{b}-{c:04}")
}

pub fn phone_intl<R: Rng>(rng: &mut R) -> String {
    let (a, b, c) = phone_parts(rng);
    format!("+1 {a} {b} {c:04}")
}

pub fn isbn<R: Rng>(rng: &mut R) -> String {
    format!(
        "978-{}-{:02}-{:06}-{}",
        rng.random_range(0..10u32),
        rng.random_range(0..100u32),
        rng.random_range(0..1_000_000u32),
        rng.random_range(0..10u32)
    )
}

pub fn ipv4<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}.{}.{}.{}",
        rng.random_range(1..256u32),
        rng.random_range(0..256u32),
        rng.random_range(0..256u32),
        rng.random_range(1..255u32)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn zip_is_five_digits() {
        let mut r = rng();
        for _ in 0..30 {
            let z = zip_us(&mut r);
            assert_eq!(z.len(), 5);
            assert!(z.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn phone_formats_differ() {
        let mut a = rng();
        let mut b = rng();
        let p1 = phone_paren(&mut a);
        let p2 = phone_dash(&mut b);
        assert!(p1.starts_with('('));
        assert!(!p2.contains('('));
        assert_eq!(p2.matches('-').count(), 2);
    }

    #[test]
    fn intl_phone_has_plus() {
        let mut r = rng();
        assert!(phone_intl(&mut r).starts_with("+1 "));
    }

    #[test]
    fn ipv4_has_four_octets() {
        let mut r = rng();
        for _ in 0..30 {
            let ip = ipv4(&mut r);
            let parts: Vec<&str> = ip.split('.').collect();
            assert_eq!(parts.len(), 4);
            for p in parts {
                let n: u32 = p.parse().unwrap();
                assert!(n < 256);
            }
        }
    }

    #[test]
    fn isbn_shape() {
        let mut r = rng();
        let i = isbn(&mut r);
        assert!(i.starts_with("978-"));
        assert_eq!(i.matches('-').count(), 4);
    }

    #[test]
    fn alnum_code_shape() {
        let mut r = rng();
        let c = alnum_code(&mut r);
        assert_eq!(c.len(), 7);
        assert!(c.chars().take(2).all(|ch| ch.is_ascii_uppercase()));
        assert_eq!(&c[2..3], "-");
    }
}
