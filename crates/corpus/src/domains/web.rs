//! Email, URL, and domain-name generators.

use rand::prelude::IndexedRandom;
use rand::Rng;

const USERS: [&str; 12] = [
    "jane", "john", "info", "sales", "admin", "support", "alice", "bob", "contact", "team",
    "office", "hello",
];

const HOSTS: [&str; 12] = [
    "example",
    "acme",
    "contoso",
    "fabrikam",
    "northwind",
    "initech",
    "globex",
    "umbrella",
    "stark",
    "wayne",
    "hooli",
    "vandelay",
];

const TLDS: [&str; 6] = ["com", "org", "net", "io", "co", "edu"];

const PATHS: [&str; 8] = [
    "index", "about", "products", "news", "team", "docs", "blog", "contact",
];

pub fn email<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}{}@{}.{}",
        USERS.choose(rng).expect("non-empty"),
        rng.random_range(0..100u32),
        HOSTS.choose(rng).expect("non-empty"),
        TLDS.choose(rng).expect("non-empty")
    )
}

pub fn url<R: Rng>(rng: &mut R) -> String {
    format!(
        "http://www.{}.{}/{}",
        HOSTS.choose(rng).expect("non-empty"),
        TLDS.choose(rng).expect("non-empty"),
        PATHS.choose(rng).expect("non-empty")
    )
}

pub fn domain_name<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}.{}",
        HOSTS.choose(rng).expect("non-empty"),
        TLDS.choose(rng).expect("non-empty")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn email_has_at_and_dot() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let e = email(&mut r);
            assert!(e.contains('@'));
            assert!(e.split('@').nth(1).unwrap().contains('.'));
        }
    }

    #[test]
    fn url_has_scheme() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(url(&mut r).starts_with("http://"));
    }

    #[test]
    fn domain_is_two_labels() {
        let mut r = StdRng::seed_from_u64(2);
        let d = domain_name(&mut r);
        assert_eq!(d.split('.').count(), 2);
    }
}
