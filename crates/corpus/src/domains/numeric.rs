//! Numeric value generators.

use rand::Rng;

/// Formats `n` with `,` thousands separators.
pub(crate) fn with_separators(n: u64) -> String {
    let digits = n.to_string();
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Samples an integer with a log-uniform magnitude: digit count uniform in
/// `[min_digits, max_digits]`, then uniform within that decade. Real table
/// numbers are closer to log- than uniform-distributed (Benford-like), and
/// this keeps every length pattern well supported in corpus statistics.
pub(crate) fn log_uniform_int<R: Rng>(rng: &mut R, min_digits: u32, max_digits: u32) -> u64 {
    let d = rng.random_range(min_digits..=max_digits);
    if d <= 1 {
        return rng.random_range(0..10u64);
    }
    let lo = 10u64.pow(d - 1);
    let hi = 10u64.pow(d);
    rng.random_range(lo..hi)
}

pub fn small_int<R: Rng>(rng: &mut R) -> String {
    log_uniform_int(rng, 1, 3).to_string()
}

pub fn medium_int<R: Rng>(rng: &mut R) -> String {
    log_uniform_int(rng, 1, 5).to_string()
}

pub fn separated_int<R: Rng>(rng: &mut R) -> String {
    with_separators(log_uniform_int(rng, 4, 8))
}

pub fn float1<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}.{}",
        log_uniform_int(rng, 1, 3),
        rng.random_range(0..10u32)
    )
}

pub fn float2<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}.{:02}",
        log_uniform_int(rng, 1, 4),
        rng.random_range(0..100u32)
    )
}

pub fn signed_int<R: Rng>(rng: &mut R) -> String {
    let n: i32 = rng.random_range(-500..500);
    if n >= 0 {
        format!("+{n}")
    } else {
        n.to_string()
    }
}

pub fn percent<R: Rng>(rng: &mut R) -> String {
    format!("{}%", rng.random_range(0..=100u32))
}

pub fn percent_decimal<R: Rng>(rng: &mut R) -> String {
    format!("{:.1}%", rng.random_range(0.0..100.0f64))
}

pub fn currency_usd<R: Rng>(rng: &mut R) -> String {
    let dollars = log_uniform_int(rng, 1, 7);
    let cents = rng.random_range(0..100u32);
    format!("${}.{cents:02}", with_separators(dollars))
}

pub fn currency_plain<R: Rng>(rng: &mut R) -> String {
    format!("{:.2} USD", rng.random_range(1.0..100_000.0f64))
}

pub fn paren_negative<R: Rng>(rng: &mut R) -> String {
    format!("({})", with_separators(log_uniform_int(rng, 4, 6)))
}

pub fn ordinal<R: Rng>(rng: &mut R) -> String {
    let n = rng.random_range(1..=100u32);
    let suffix = match (n % 10, n % 100) {
        (1, 11) | (2, 12) | (3, 13) => "th",
        (1, _) => "st",
        (2, _) => "nd",
        (3, _) => "rd",
        _ => "th",
    };
    format!("{n}{suffix}")
}

pub fn scientific<R: Rng>(rng: &mut R) -> String {
    format!(
        "{:.1}e{}",
        rng.random_range(1.0..10.0f64),
        rng.random_range(1..9u32)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn separator_formatting() {
        assert_eq!(with_separators(0), "0");
        assert_eq!(with_separators(999), "999");
        assert_eq!(with_separators(1000), "1,000");
        assert_eq!(with_separators(1234567), "1,234,567");
        assert_eq!(with_separators(100), "100");
    }

    #[test]
    fn separated_int_always_has_comma() {
        let mut r = rng();
        for _ in 0..50 {
            assert!(separated_int(&mut r).contains(','));
        }
    }

    #[test]
    fn ordinal_suffixes() {
        // Deterministic check of the suffix logic via direct construction.
        let cases = [
            (1, "1st"),
            (2, "2nd"),
            (3, "3rd"),
            (4, "4th"),
            (11, "11th"),
            (12, "12th"),
            (13, "13th"),
            (21, "21st"),
            (22, "22nd"),
            (23, "23rd"),
            (100, "100th"),
        ];
        for (n, want) in cases {
            let suffix = match (n % 10, n % 100) {
                (1, 11) | (2, 12) | (3, 13) => "th",
                (1, _) => "st",
                (2, _) => "nd",
                (3, _) => "rd",
                _ => "th",
            };
            assert_eq!(format!("{n}{suffix}"), want);
        }
    }

    #[test]
    fn floats_have_expected_precision() {
        let mut r = rng();
        let f1 = float1(&mut r);
        assert_eq!(f1.split('.').nth(1).unwrap().len(), 1);
        let f2 = float2(&mut r);
        assert_eq!(f2.split('.').nth(1).unwrap().len(), 2);
    }

    #[test]
    fn currency_shape() {
        let mut r = rng();
        for _ in 0..20 {
            let v = currency_usd(&mut r);
            assert!(v.starts_with('$'));
            assert!(v.contains('.'));
        }
    }

    #[test]
    fn percent_ends_with_sign() {
        let mut r = rng();
        assert!(percent(&mut r).ends_with('%'));
        assert!(percent_decimal(&mut r).ends_with('%'));
    }
}
