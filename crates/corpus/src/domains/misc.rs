//! Miscellaneous domains: scores, placeholders, booleans, grades, versions,
//! coordinates.

use rand::prelude::IndexedRandom;
use rand::Rng;

pub fn score_dash<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}-{}",
        rng.random_range(0..10u32),
        rng.random_range(0..10u32)
    )
}

pub fn score_colon<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}:{}",
        rng.random_range(0..10u32),
        rng.random_range(0..10u32)
    )
}

const PLACEHOLDERS: [&str; 5] = ["N/A", "-", "TBD", "n/a", "?"];

pub fn placeholder<R: Rng>(rng: &mut R) -> String {
    (*PLACEHOLDERS.choose(rng).expect("non-empty")).to_string()
}

pub fn bool_yes_no<R: Rng>(rng: &mut R) -> String {
    if rng.random_bool(0.5) { "Yes" } else { "No" }.to_string()
}

const GRADES: [&str; 12] = [
    "A+", "A", "A-", "B+", "B", "B-", "C+", "C", "C-", "D+", "D", "F",
];

pub fn grade<R: Rng>(rng: &mut R) -> String {
    (*GRADES.choose(rng).expect("non-empty")).to_string()
}

pub fn version<R: Rng>(rng: &mut R) -> String {
    format!(
        "{}.{}.{}",
        rng.random_range(0..10u32),
        rng.random_range(0..20u32),
        rng.random_range(0..50u32)
    )
}

pub fn weight_kg<R: Rng>(rng: &mut R) -> String {
    format!("{} kg", rng.random_range(40..150u32))
}

pub fn weight_lb<R: Rng>(rng: &mut R) -> String {
    format!("{} lb", rng.random_range(90..330u32))
}

pub fn coordinate<R: Rng>(rng: &mut R) -> String {
    format!(
        "{:.4}, {:.4}",
        rng.random_range(-90.0..90.0f64),
        rng.random_range(-180.0..180.0f64)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scores_are_single_digit_pairs() {
        let mut r = StdRng::seed_from_u64(4);
        let s = score_dash(&mut r);
        assert_eq!(s.len(), 3);
        assert_eq!(&s[1..2], "-");
        let c = score_colon(&mut r);
        assert_eq!(&c[1..2], ":");
    }

    #[test]
    fn placeholders_from_fixed_set() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            assert!(PLACEHOLDERS.contains(&placeholder(&mut r).as_str()));
        }
    }

    #[test]
    fn version_three_parts() {
        let mut r = StdRng::seed_from_u64(4);
        assert_eq!(version(&mut r).split('.').count(), 3);
    }

    #[test]
    fn coordinate_in_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        let c = coordinate(&mut r);
        let parts: Vec<f64> = c.split(", ").map(|p| p.parse().unwrap()).collect();
        assert!(parts[0].abs() <= 90.0);
        assert!(parts[1].abs() <= 180.0);
    }

    #[test]
    fn weights_have_units() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(weight_kg(&mut r).ends_with(" kg"));
        assert!(weight_lb(&mut r).ends_with(" lb"));
    }

    #[test]
    fn bool_values() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let b = bool_yes_no(&mut r);
            assert!(b == "Yes" || b == "No");
        }
    }
}
