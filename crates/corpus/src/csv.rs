//! Loading delimited files into columns.
//!
//! A small, dependency-free CSV reader sufficient for the example binaries
//! and the CSV benchmark set: quoted fields with embedded delimiters,
//! doubled-quote escapes, CR/LF line endings.

use crate::column::{Column, SourceTag};
use std::io;
use std::path::Path;

/// Parses one CSV record (already split on record boundary) into fields.
fn parse_record(line: &str, delim: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' && cur.is_empty() {
            in_quotes = true;
        } else if c == delim {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    fields.push(cur);
    fields
}

/// Splits raw CSV text into records, honoring quoted newlines.
fn split_records(text: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            '\n' if !in_quotes => {
                if cur.ends_with('\r') {
                    cur.pop();
                }
                records.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        if cur.ends_with('\r') {
            cur.pop();
        }
        records.push(cur);
    }
    records
}

/// Parses CSV text into columns. When `has_header` is set, the first
/// record becomes the column headers.
pub fn columns_from_csv_text(text: &str, delim: char, has_header: bool) -> Vec<Column> {
    let records = split_records(text);
    let mut rows: Vec<Vec<String>> = records
        .iter()
        .filter(|r| !r.is_empty())
        .map(|r| parse_record(r, delim))
        .collect();
    if rows.is_empty() {
        return Vec::new();
    }
    let headers: Option<Vec<String>> = if has_header {
        Some(rows.remove(0))
    } else {
        None
    };
    let width = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut columns: Vec<Column> = (0..width)
        .map(|i| {
            let mut c = Column::new(Vec::new(), SourceTag::Local);
            if let Some(h) = &headers {
                c.header = h.get(i).cloned();
            }
            c
        })
        .collect();
    for row in &rows {
        for (i, col) in columns.iter_mut().enumerate() {
            col.values.push(row.get(i).cloned().unwrap_or_default());
        }
    }
    columns
}

/// Loads a CSV file into columns.
pub fn load_csv<P: AsRef<Path>>(path: P, delim: char, has_header: bool) -> io::Result<Vec<Column>> {
    let text = std::fs::read_to_string(path)?;
    Ok(columns_from_csv_text(&text, delim, has_header))
}

/// Streaming CSV record iterator: yields parsed records one at a time
/// without materializing the file.
///
/// Record boundary semantics are identical to the in-memory path
/// ([`columns_from_csv_text`]): records split on unquoted `\n`, trailing
/// `\r` stripped, blank records skipped, quoted newlines and
/// doubled-quote escapes honored. Callers that only accumulate
/// per-column aggregates (e.g. distinct-value counts) get bounded memory
/// regardless of row count.
pub struct CsvRecords<R: io::BufRead> {
    reader: R,
    delim: char,
    done: bool,
}

impl<R: io::BufRead> CsvRecords<R> {
    /// Wraps a buffered reader producing `delim`-separated records.
    pub fn new(reader: R, delim: char) -> Self {
        CsvRecords {
            reader,
            delim,
            done: false,
        }
    }
}

impl<R: io::BufRead> Iterator for CsvRecords<R> {
    type Item = io::Result<Vec<String>>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            // Accumulate physical lines until the quote count balances —
            // the incremental equivalent of split_records' `in_quotes`
            // toggle — so quoted newlines stay inside one record.
            let mut record = String::new();
            let mut in_quotes = false;
            loop {
                let mut line = String::new();
                match self.reader.read_line(&mut line) {
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                    Ok(0) => {
                        self.done = true;
                        break;
                    }
                    Ok(_) => {
                        for c in line.chars() {
                            if c == '"' {
                                in_quotes = !in_quotes;
                            }
                        }
                        record.push_str(&line);
                        if !in_quotes && record.ends_with('\n') {
                            break;
                        }
                    }
                }
            }
            if record.ends_with('\n') {
                record.pop();
            }
            if record.ends_with('\r') {
                record.pop();
            }
            if !record.is_empty() {
                return Some(Ok(parse_record(&record, self.delim)));
            }
        }
        None
    }
}

/// Opens a CSV file as a streaming record iterator.
pub fn stream_csv_records<P: AsRef<Path>>(
    path: P,
    delim: char,
) -> io::Result<CsvRecords<io::BufReader<std::fs::File>>> {
    let file = std::fs::File::open(path)?;
    Ok(CsvRecords::new(io::BufReader::new(file), delim))
}

/// Writes columns back out as CSV (used by examples to persist findings).
pub fn columns_to_csv_text(columns: &[Column], delim: char) -> String {
    let mut out = String::new();
    let has_headers = columns.iter().any(|c| c.header.is_some());
    let quote = |s: &str| -> String {
        if s.contains(delim) || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    if has_headers {
        let row: Vec<String> = columns
            .iter()
            .map(|c| quote(c.header.as_deref().unwrap_or("")))
            .collect();
        out.push_str(&row.join(&delim.to_string()));
        out.push('\n');
    }
    let height = columns.iter().map(|c| c.len()).max().unwrap_or(0);
    for i in 0..height {
        let row: Vec<String> = columns
            .iter()
            .map(|c| quote(c.values.get(i).map(|s| s.as_str()).unwrap_or("")))
            .collect();
        out.push_str(&row.join(&delim.to_string()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse() {
        let cols = columns_from_csv_text("a,b\n1,2\n3,4\n", ',', true);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].header.as_deref(), Some("a"));
        assert_eq!(cols[0].values, vec!["1", "3"]);
        assert_eq!(cols[1].values, vec!["2", "4"]);
    }

    #[test]
    fn quoted_fields_with_delims_and_quotes() {
        let cols = columns_from_csv_text("\"x,y\",\"he said \"\"hi\"\"\"\n1,2\n", ',', false);
        assert_eq!(cols[0].values[0], "x,y");
        assert_eq!(cols[1].values[0], "he said \"hi\"");
    }

    #[test]
    fn quoted_newline() {
        let cols = columns_from_csv_text("\"line1\nline2\",b\n", ',', false);
        assert_eq!(cols[0].values[0], "line1\nline2");
        assert_eq!(cols[1].values[0], "b");
    }

    #[test]
    fn crlf_handled() {
        let cols = columns_from_csv_text("a,b\r\n1,2\r\n", ',', true);
        assert_eq!(cols[0].values, vec!["1"]);
    }

    #[test]
    fn ragged_rows_padded() {
        let cols = columns_from_csv_text("1,2,3\n4\n", ',', false);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[1].values, vec!["2", ""]);
    }

    #[test]
    fn roundtrip_through_writer() {
        let text = "h1,h2\nplain,\"with,comma\"\n\"q\"\"uote\",x\n";
        let cols = columns_from_csv_text(text, ',', true);
        let back = columns_to_csv_text(&cols, ',');
        let cols2 = columns_from_csv_text(&back, ',', true);
        assert_eq!(cols, cols2);
    }

    #[test]
    fn tab_delimited() {
        let cols = columns_from_csv_text("1\t2\n3\t4\n", '\t', false);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[1].values, vec!["2", "4"]);
    }

    #[test]
    fn streaming_records_match_in_memory_split() {
        // Quoted newline, doubled quotes, CRLF, blank record, no trailing
        // newline — every boundary case of split_records at once.
        let text = "h1,h2\r\n\"multi\nline\",\"he said \"\"hi\"\"\"\n\n1,2";
        let streamed: Vec<Vec<String>> = CsvRecords::new(io::Cursor::new(text), ',')
            .map(|r| r.unwrap())
            .collect();
        let expected: Vec<Vec<String>> = split_records(text)
            .iter()
            .filter(|r| !r.is_empty())
            .map(|r| parse_record(r, ','))
            .collect();
        assert_eq!(streamed, expected);
        assert_eq!(streamed.len(), 3);
        assert_eq!(streamed[1][0], "multi\nline");
        assert_eq!(streamed[1][1], "he said \"hi\"");
        assert_eq!(streamed[2], vec!["1", "2"]);
    }

    #[test]
    fn streaming_empty_input_yields_nothing() {
        let mut it = CsvRecords::new(io::Cursor::new(""), ',');
        assert!(it.next().is_none());
        assert!(it.next().is_none());
    }
}
