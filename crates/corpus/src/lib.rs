//! Table-column corpus substrate for Auto-Detect.
//!
//! The paper trains on 350M web-table columns from Bing's index and 1.4M
//! public spreadsheet columns — assets we do not have. This crate builds the
//! closest synthetic equivalent (see DESIGN.md §1): a corpus generator whose
//! columns reproduce the *co-occurrence structure* the method exploits:
//!
//! * value domains that legitimately mix inside real columns (plain
//!   integers with `1,000`-style separated numbers and floats; scores with
//!   `—` placeholders) are sampled into the same columns, and
//! * incompatible formats (`2011-01-01` vs `2011/01/01`, `(425) 555-0123`
//!   vs `425-555-0123`) are kept in separate columns,
//!
//! which is exactly the statistical signal NPMI-over-patterns consumes.
//!
//! Modules:
//! * [`mod@column`] / [`mod@corpus`] — the data model plus plain-text persistence;
//! * [`domains`] — ~45 value-domain generators grouped by family;
//! * [`mixgroup`] — which domains co-occur within columns, with weights;
//! * [`profile`] — corpus profiles standing in for WEB / WIKI / Pub-XLS /
//!   Ent-XLS / CSV (Table 3);
//! * [`generator`] — deterministic seeded corpus generation;
//! * [`errors`] — error injection reproducing the paper's error classes
//!   (Figures 1–2, Table 4) with exact ground-truth labels;
//! * [`csv`] — loading real delimited files into columns.

pub mod column;
pub mod corpus;
pub mod csv;
pub mod domains;
pub mod errors;
pub mod generator;
pub mod mixgroup;
pub mod profile;
pub mod table;

pub use column::{Column, LabeledColumn, SourceTag};
pub use corpus::Corpus;
pub use csv::{load_csv, stream_csv_records, CsvRecords};
pub use domains::{DomainKind, Family};
pub use errors::{corrupt_value, inject_error, ErrorKind};
pub use generator::{generate_corpus, generate_labeled_columns, CorpusGenerator};
pub use mixgroup::{MixGroup, MixGroupId};
pub use profile::CorpusProfile;
pub use table::Table;
