//! Corpus profiles: the stand-ins for the paper's five corpora (Table 3).
//!
//! A profile fixes the column count, column-length distribution, the
//! mix-group weight multipliers (which shift the domain mixture between
//! web-ish, wiki-ish and enterprise-ish content), the background dirty
//! rate, and the seed. The paper's corpus sizes (350M / 30M / 1.4M / 3.2M /
//! 441 columns) are scaled down by ~10^3 so training runs on a laptop while
//! preserving the *relative* sizes (WEB ≫ WIKI ≫ XLS ≫ CSV).

use crate::column::SourceTag;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters describing one synthetic corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusProfile {
    /// Human-readable name (matches the paper's corpus names).
    pub name: String,
    /// Source tag stamped on generated columns.
    pub source: SourceTag,
    /// Number of columns to generate.
    pub n_columns: usize,
    /// Minimum column length (cells).
    pub min_len: usize,
    /// Maximum column length (cells).
    pub max_len: usize,
    /// Fraction of columns that receive an injected error (the paper
    /// estimates 2.2% dirty for sampled WIKI and 6.9% for WEB columns).
    pub dirty_rate: f64,
    /// Multiplier applied to each mix group's base weight, keyed by group
    /// name; groups not listed keep weight ×1.
    pub group_boost: HashMap<String, f64>,
    /// RNG seed; two generations with the same profile are identical.
    pub seed: u64,
}

impl CorpusProfile {
    fn base(name: &str, source: SourceTag, n_columns: usize, seed: u64) -> Self {
        CorpusProfile {
            name: name.to_string(),
            source,
            n_columns,
            min_len: 5,
            max_len: 50,
            dirty_rate: 0.0,
            group_boost: HashMap::new(),
            seed,
        }
    }

    fn boost(mut self, pairs: &[(&str, f64)]) -> Self {
        for (k, v) in pairs {
            self.group_boost.insert((*k).to_string(), *v);
        }
        self
    }

    /// WEB: the large, diverse training corpus (paper: 350M columns,
    /// 93.1% clean). Scaled default: 300K columns.
    pub fn web(n_columns: usize) -> Self {
        let mut p = CorpusProfile::base("WEB", SourceTag::Web, n_columns, 0xAD7_0001);
        p.dirty_rate = 0.069;
        p
    }

    /// WIKI: smaller, cleaner, list/score-heavy (paper: 30M columns, 97.8%
    /// clean).
    pub fn wiki(n_columns: usize) -> Self {
        let mut p = CorpusProfile::base("WIKI", SourceTag::Wiki, n_columns, 0xAD7_0002);
        p.dirty_rate = 0.022;
        p.boost(&[
            ("score_dash", 2.5),
            ("year", 2.0),
            ("date_month_d_y", 2.0),
            ("duration", 2.0),
            ("cities", 1.5),
            ("person_name", 1.5),
            ("phone_paren", 0.3),
            ("alnum_code", 0.5),
            ("email", 0.3),
        ])
    }

    /// Pub-XLS: public spreadsheets (paper: 1.4M columns).
    pub fn pub_xls(n_columns: usize) -> Self {
        let mut p = CorpusProfile::base("Pub-XLS", SourceTag::PubXls, n_columns, 0xAD7_0003);
        p.dirty_rate = 0.05;
        p.boost(&[
            ("int_mix", 1.5),
            ("float_mix", 1.5),
            ("currency", 2.0),
            ("percent", 1.5),
            ("bool", 1.5),
        ])
    }

    /// Ent-XLS: enterprise spreadsheets, numeric- and code-heavy (paper:
    /// 3.2M columns).
    pub fn ent_xls(n_columns: usize) -> Self {
        let mut p = CorpusProfile::base("Ent-XLS", SourceTag::EntXls, n_columns, 0xAD7_0004);
        p.dirty_rate = 0.04;
        p.boost(&[
            ("int_mix", 2.0),
            ("float_mix", 2.0),
            ("currency", 2.5),
            ("currency_plain", 2.0),
            ("alnum_code", 2.5),
            ("percent", 2.0),
            ("bool", 2.0),
            ("version", 1.5),
            ("score_dash", 0.2),
            ("duration", 0.3),
            ("cities", 0.5),
        ])
    }

    /// CSV: the 441-column hand-labeled benchmark stand-in (paper: 26
    /// files known to have quality issues; high dirty rate).
    pub fn csv_set() -> Self {
        let mut p = CorpusProfile::base("CSV", SourceTag::Csv, 441, 0xAD7_0005);
        p.dirty_rate = 0.35;
        p.min_len = 8;
        p.max_len = 40;
        p
    }

    /// Default scaled sizes used by the experiment binaries (see
    /// EXPERIMENTS.md): WEB 120K, WIKI 30K, Pub-XLS 8K, Ent-XLS 12K.
    pub fn default_suite() -> Vec<CorpusProfile> {
        vec![
            CorpusProfile::web(120_000),
            CorpusProfile::pub_xls(8_000),
            CorpusProfile::wiki(30_000),
            CorpusProfile::ent_xls(12_000),
            CorpusProfile::csv_set(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_distinct_seeds_and_names() {
        let suite = CorpusProfile::default_suite();
        let mut seeds: Vec<u64> = suite.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), suite.len());
        assert_eq!(suite[0].name, "WEB");
        assert_eq!(suite[4].name, "CSV");
    }

    #[test]
    fn relative_sizes_preserved() {
        let suite = CorpusProfile::default_suite();
        // WEB > WIKI > Ent-XLS > Pub-XLS > CSV, mirroring Table 3 ordering
        // (350M, 30M, 3.2M, 1.4M, 441).
        assert!(suite[0].n_columns > suite[2].n_columns);
        assert!(suite[2].n_columns > suite[3].n_columns);
        assert!(suite[3].n_columns > suite[1].n_columns);
        assert!(suite[1].n_columns > suite[4].n_columns);
    }

    #[test]
    fn wiki_cleaner_than_web() {
        assert!(CorpusProfile::wiki(1).dirty_rate < CorpusProfile::web(1).dirty_rate);
    }

    #[test]
    fn boosts_recorded() {
        let p = CorpusProfile::ent_xls(10);
        assert!(p.group_boost["currency"] > 1.0);
        assert!(p.group_boost["score_dash"] < 1.0);
    }
}
