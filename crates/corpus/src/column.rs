//! The column data model.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which corpus a column came from (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceTag {
    /// Web-table corpus (the paper's 350M-column WEB).
    Web,
    /// Wikipedia subset (WIKI).
    Wiki,
    /// Public spreadsheets (Pub-XLS).
    PubXls,
    /// Enterprise spreadsheets (Ent-XLS).
    EntXls,
    /// Hand-labeled CSV benchmark files.
    Csv,
    /// Loaded from a local file at runtime.
    Local,
}

/// A single table column: an ordered list of cell values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Optional header cell.
    pub header: Option<String>,
    /// Cell values, in row order.
    pub values: Vec<String>,
    /// Provenance tag.
    pub source: SourceTag,
}

impl Column {
    /// A headerless column from values.
    pub fn new(values: Vec<String>, source: SourceTag) -> Self {
        Column {
            header: None,
            values,
            source,
        }
    }

    /// Convenience constructor from string slices.
    pub fn from_strs(values: &[&str], source: SourceTag) -> Self {
        Column::new(values.iter().map(|s| s.to_string()).collect(), source)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Distinct cell values, sorted (deterministic iteration matters for
    /// reproducible statistics).
    pub fn distinct_values(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self.values.iter().map(|s| s.as_str()).collect();
        set.into_iter().collect()
    }

    /// Drops empty cells and trims nothing; returns the surviving values.
    /// Mirrors the paper's "simple pruning" when extracting corpus columns.
    pub fn non_empty_values(&self) -> impl Iterator<Item = &str> {
        self.values
            .iter()
            .map(|s| s.as_str())
            .filter(|s| !s.is_empty())
    }
}

/// A column with exact error labels, produced by the generator/injector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledColumn {
    /// The (possibly dirty) column.
    pub column: Column,
    /// Row indices of the injected/errored cells; empty means clean.
    pub error_rows: Vec<usize>,
    /// Human-readable description of the injected error, if any.
    pub error_note: Option<String>,
}

impl LabeledColumn {
    /// A clean labeled column.
    pub fn clean(column: Column) -> Self {
        LabeledColumn {
            column,
            error_rows: Vec::new(),
            error_note: None,
        }
    }

    /// True when the column carries at least one labeled error.
    pub fn is_dirty(&self) -> bool {
        !self.error_rows.is_empty()
    }

    /// True when row `i` is a labeled error.
    pub fn is_error_row(&self, i: usize) -> bool {
        self.error_rows.contains(&i)
    }

    /// True when value `v` appears only at labeled error rows.
    ///
    /// Ranked-prediction evaluation identifies predictions by value, so a
    /// predicted value counts as a true error only if every occurrence of it
    /// in the column is a labeled error cell.
    pub fn is_error_value(&self, v: &str) -> bool {
        let mut seen = false;
        for (i, cell) in self.column.values.iter().enumerate() {
            if cell == v {
                seen = true;
                if !self.error_rows.contains(&i) {
                    return false;
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_values_sorted_and_deduped() {
        let c = Column::from_strs(&["b", "a", "b", "c", "a"], SourceTag::Web);
        assert_eq!(c.distinct_values(), vec!["a", "b", "c"]);
    }

    #[test]
    fn non_empty_filters_blanks() {
        let c = Column::from_strs(&["x", "", "y", ""], SourceTag::Web);
        let vals: Vec<&str> = c.non_empty_values().collect();
        assert_eq!(vals, vec!["x", "y"]);
    }

    #[test]
    fn labeled_error_value_requires_all_occurrences_labeled() {
        let c = Column::from_strs(&["1", "2", "1"], SourceTag::Wiki);
        let l = LabeledColumn {
            column: c,
            error_rows: vec![0],
            error_note: None,
        };
        // "1" appears at rows 0 and 2 but only row 0 is labeled.
        assert!(!l.is_error_value("1"));
        assert!(!l.is_error_value("2"));
        assert!(!l.is_error_value("3"));

        let l2 = LabeledColumn {
            column: Column::from_strs(&["1", "2", "1x"], SourceTag::Wiki),
            error_rows: vec![2],
            error_note: Some("typo".into()),
        };
        assert!(l2.is_error_value("1x"));
        assert!(l2.is_dirty());
        assert!(l2.is_error_row(2));
        assert!(!l2.is_error_row(0));
    }
}
