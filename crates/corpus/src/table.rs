//! A table: an ordered collection of columns sharing row indices.

use crate::column::{Column, SourceTag};
use serde::{Deserialize, Serialize};

/// A relational table as a set of columns.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// Optional table name (sheet name, file name).
    pub name: Option<String>,
    /// Columns, in schema order.
    pub columns: Vec<Column>,
}

impl Table {
    /// Builds a table from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Table {
            name: None,
            columns,
        }
    }

    /// Builds a table from rows (each row one `Vec<String>`), with
    /// optional headers.
    pub fn from_rows(headers: Option<Vec<String>>, rows: &[Vec<String>]) -> Self {
        let width = headers
            .as_ref()
            .map(|h| h.len())
            .or_else(|| rows.iter().map(|r| r.len()).max())
            .unwrap_or(0);
        let mut columns: Vec<Column> = (0..width)
            .map(|i| {
                let mut c = Column::new(Vec::new(), SourceTag::Local);
                c.header = headers.as_ref().and_then(|h| h.get(i).cloned());
                c
            })
            .collect();
        for row in rows {
            for (i, col) in columns.iter_mut().enumerate() {
                col.values.push(row.get(i).cloned().unwrap_or_default());
            }
        }
        Table {
            name: None,
            columns,
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows (the longest column).
    pub fn height(&self) -> usize {
        self.columns.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// Cell accessor (column-major).
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.columns.get(col)?.values.get(row).map(|s| s.as_str())
    }

    /// Column lookup by header name.
    pub fn column_by_header(&self, header: &str) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.header.as_deref() == Some(header))
    }

    /// One row as a vector of cells (empty string for ragged gaps).
    pub fn row(&self, i: usize) -> Vec<&str> {
        self.columns
            .iter()
            .map(|c| c.values.get(i).map(|s| s.as_str()).unwrap_or(""))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(
            Some(vec!["date".into(), "amount".into()]),
            &[
                vec!["2011-01-01".into(), "12".into()],
                vec!["2011-02-02".into(), "99".into()],
                vec!["2011-03-03".into()],
            ],
        )
    }

    #[test]
    fn shape_and_cells() {
        let t = sample();
        assert_eq!(t.width(), 2);
        assert_eq!(t.height(), 3);
        assert_eq!(t.cell(0, 0), Some("2011-01-01"));
        // Ragged rows are padded to rectangular shape with empty cells.
        assert_eq!(t.cell(2, 1), Some(""));
        assert_eq!(t.cell(3, 1), None); // beyond the table
        assert_eq!(t.row(2), vec!["2011-03-03", ""]);
    }

    #[test]
    fn header_lookup() {
        let t = sample();
        assert_eq!(
            t.column_by_header("amount").unwrap().values,
            vec!["12", "99", ""]
        );
        assert!(t.column_by_header("missing").is_none());
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec![]);
        assert_eq!(t.width(), 0);
        assert_eq!(t.height(), 0);
        assert!(t.cell(0, 0).is_none());
    }
}
