//! Error injection.
//!
//! Reproduces the paper's observed single-column error classes (Figures
//! 1–2, Table 4) with exact ground-truth labels: format mixes (`2009` vs
//! `27-11-2009`), trailing punctuation (`1865.`), extra whitespace,
//! inconsistent separators (`2011.01.02` in an ISO-date column), digit
//! typos, case flips, placeholder intrusions, truncations (`198.`), and
//! European-decimal typos (`1,87`).

use crate::column::{Column, LabeledColumn};
use crate::domains::DomainKind;
use rand::prelude::IndexedRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The classes of injected errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Value replaced by a sibling-format value of the same family
    /// (Figure 1(b)/(h): mixed dates; Figure 2(b): mixed phones).
    FormatSwap,
    /// Trailing `.` appended (Figure 1(a), Table 4 rows 4–6).
    TrailingDot,
    /// Trailing `,` appended.
    TrailingComma,
    /// A space doubled or injected (Figure 2(a)).
    ExtraSpace,
    /// One separator swapped for another (`-` → `/`, `.` → `,`).
    SeparatorSwap,
    /// A digit replaced by a look-alike letter (`0` → `O`, `1` → `l`).
    DigitTypo,
    /// Letter case flipped on the whole value.
    CaseFlip,
    /// A placeholder (`N/A`, `?`) dropped into a column whose group does
    /// not legitimately contain placeholders.
    PlaceholderIntrusion,
    /// Final character(s) dropped, often leaving dangling punctuation
    /// (`198.` in Table 4).
    Truncation,
    /// Decimal point replaced by comma (`1,87` in Table 4 row 8).
    DecimalComma,
    /// Leading whitespace added.
    LeadingSpace,
    /// A parenthetical annotation appended (`3:45 (live)` among plain
    /// song lengths — Figure 1(f)).
    ParenNote,
}

impl ErrorKind {
    /// All kinds, for iteration in tests and reports.
    pub const ALL: [ErrorKind; 12] = [
        ErrorKind::FormatSwap,
        ErrorKind::TrailingDot,
        ErrorKind::TrailingComma,
        ErrorKind::ExtraSpace,
        ErrorKind::SeparatorSwap,
        ErrorKind::DigitTypo,
        ErrorKind::CaseFlip,
        ErrorKind::PlaceholderIntrusion,
        ErrorKind::Truncation,
        ErrorKind::DecimalComma,
        ErrorKind::LeadingSpace,
        ErrorKind::ParenNote,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::FormatSwap => "format_swap",
            ErrorKind::TrailingDot => "trailing_dot",
            ErrorKind::TrailingComma => "trailing_comma",
            ErrorKind::ExtraSpace => "extra_space",
            ErrorKind::SeparatorSwap => "separator_swap",
            ErrorKind::DigitTypo => "digit_typo",
            ErrorKind::CaseFlip => "case_flip",
            ErrorKind::PlaceholderIntrusion => "placeholder_intrusion",
            ErrorKind::Truncation => "truncation",
            ErrorKind::DecimalComma => "decimal_comma",
            ErrorKind::LeadingSpace => "leading_space",
            ErrorKind::ParenNote => "paren_note",
        }
    }
}

/// Applies `kind` to `value`; `None` when the kind is not applicable.
///
/// `domain` is the domain the column was generated from (used by
/// [`ErrorKind::FormatSwap`] to pick a sibling format).
pub fn corrupt_value<R: Rng>(
    value: &str,
    domain: DomainKind,
    kind: ErrorKind,
    rng: &mut R,
) -> Option<String> {
    let out = match kind {
        ErrorKind::FormatSwap => {
            let sibs = domain.siblings();
            let sib = sibs.choose(rng)?;
            sib.sample(rng)
        }
        ErrorKind::TrailingDot => {
            if value.ends_with('.') {
                return None;
            }
            format!("{value}.")
        }
        ErrorKind::TrailingComma => {
            if value.ends_with(',') {
                return None;
            }
            format!("{value},")
        }
        ErrorKind::ExtraSpace => {
            if let Some(pos) = value.find(' ') {
                // Double an existing space.
                let mut s = value.to_string();
                s.insert(pos, ' ');
                s
            } else {
                format!("{value} ")
            }
        }
        ErrorKind::SeparatorSwap => {
            const SWAPS: [(char, char); 5] =
                [('-', '/'), ('/', '-'), ('.', ','), (':', '.'), (',', '.')];
            let present: Vec<(char, char)> = SWAPS
                .iter()
                .copied()
                .filter(|&(from, _)| value.contains(from))
                .collect();
            let &(from, to) = present.choose(rng)?;
            value.replacen(from, &to.to_string(), 1)
        }
        ErrorKind::DigitTypo => {
            let digits: Vec<(usize, char)> = value
                .char_indices()
                .filter(|(_, c)| c.is_ascii_digit())
                .collect();
            let &(pos, c) = digits.choose(rng)?;
            let repl = match c {
                '0' => 'O',
                '1' => 'l',
                '5' => 'S',
                _ => 'o',
            };
            let mut s = value.to_string();
            s.replace_range(pos..pos + c.len_utf8(), &repl.to_string());
            s
        }
        ErrorKind::CaseFlip => {
            if !value.chars().any(|c| c.is_ascii_alphabetic()) {
                return None;
            }
            if value.chars().any(|c| c.is_ascii_lowercase()) {
                value.to_ascii_uppercase()
            } else {
                value.to_ascii_lowercase()
            }
        }
        ErrorKind::PlaceholderIntrusion => {
            if matches!(domain, DomainKind::Placeholder) {
                return None;
            }
            ["N/A", "?", "TBD", "--"]
                .choose(rng)
                .expect("non-empty")
                .to_string()
        }
        ErrorKind::Truncation => {
            if value.chars().count() < 4 {
                return None;
            }
            let cut: String = value.chars().take(value.chars().count() - 1).collect();
            cut
        }
        ErrorKind::DecimalComma => {
            if !value.contains('.')
                || !value.chars().any(|c| c.is_ascii_digit())
                || value.contains(',')
            {
                return None;
            }
            value.replacen('.', ",", 1)
        }
        ErrorKind::LeadingSpace => {
            if value.starts_with(' ') {
                return None;
            }
            format!(" {value}")
        }
        ErrorKind::ParenNote => {
            if value.contains('(') {
                return None;
            }
            let note = ["(2)", "(live)", "(est.)", "(*)"]
                .choose(rng)
                .expect("non-empty");
            format!("{value} {note}")
        }
    };
    if out == value {
        None
    } else {
        Some(out)
    }
}

/// Injects one error into a clean column: picks a row and an applicable
/// error kind, replaces the value, and returns the labeled result.
///
/// Returns `None` if no kind applies to any sampled row (rare; e.g. an
/// all-placeholder column).
pub fn inject_error<R: Rng>(
    column: &Column,
    domain: DomainKind,
    rng: &mut R,
) -> Option<(LabeledColumn, ErrorKind)> {
    if column.is_empty() {
        return None;
    }
    // Try a few (row, kind) combinations before giving up.
    for _ in 0..24 {
        let row = rng.random_range(0..column.len());
        let kind = *ErrorKind::ALL.choose(rng).expect("non-empty");
        let original = &column.values[row];
        if let Some(corrupted) = corrupt_value(original, domain, kind, rng) {
            // Don't create a "corrupted" value that already legitimately
            // appears elsewhere in the column.
            if column.values.iter().any(|v| v == &corrupted) {
                continue;
            }
            let mut dirty = column.clone();
            dirty.values[row] = corrupted.clone();
            let labeled = LabeledColumn {
                column: dirty,
                error_rows: vec![row],
                error_note: Some(format!("{}: {original:?} -> {corrupted:?}", kind.name())),
            };
            return Some((labeled, kind));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::SourceTag;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn trailing_dot_appends() {
        let mut r = rng();
        let v = corrupt_value("1865", DomainKind::Year, ErrorKind::TrailingDot, &mut r);
        assert_eq!(v.unwrap(), "1865.");
    }

    #[test]
    fn trailing_dot_not_applicable_twice() {
        let mut r = rng();
        assert!(corrupt_value("1865.", DomainKind::Year, ErrorKind::TrailingDot, &mut r).is_none());
    }

    #[test]
    fn separator_swap_changes_one_separator() {
        let mut r = rng();
        let v = corrupt_value(
            "2011-01-01",
            DomainKind::DateIso,
            ErrorKind::SeparatorSwap,
            &mut r,
        )
        .unwrap();
        assert_ne!(v, "2011-01-01");
        assert!(v.contains('/'));
    }

    #[test]
    fn separator_swap_needs_separator() {
        let mut r = rng();
        assert!(
            corrupt_value("2011", DomainKind::Year, ErrorKind::SeparatorSwap, &mut r).is_none()
        );
    }

    #[test]
    fn format_swap_uses_sibling_family() {
        let mut r = rng();
        let v = corrupt_value(
            "2011-01-01",
            DomainKind::DateIso,
            ErrorKind::FormatSwap,
            &mut r,
        )
        .unwrap();
        assert_ne!(v, "2011-01-01");
    }

    #[test]
    fn decimal_comma_swap() {
        let mut r = rng();
        let v = corrupt_value("1.87", DomainKind::Float2, ErrorKind::DecimalComma, &mut r);
        assert_eq!(v.unwrap(), "1,87");
        assert!(
            corrupt_value("187", DomainKind::Float2, ErrorKind::DecimalComma, &mut r).is_none()
        );
    }

    #[test]
    fn case_flip_needs_letters() {
        let mut r = rng();
        assert!(corrupt_value("123", DomainKind::SmallInt, ErrorKind::CaseFlip, &mut r).is_none());
        let v = corrupt_value("July", DomainKind::MonthName, ErrorKind::CaseFlip, &mut r);
        assert_eq!(v.unwrap(), "JULY");
    }

    #[test]
    fn digit_typo_replaces_digit() {
        let mut r = rng();
        let v = corrupt_value("1905", DomainKind::Year, ErrorKind::DigitTypo, &mut r).unwrap();
        assert_ne!(v, "1905");
        assert!(v.chars().any(|c| c.is_ascii_alphabetic()));
        assert!(
            corrupt_value("abc", DomainKind::WordLower, ErrorKind::DigitTypo, &mut r).is_none()
        );
    }

    #[test]
    fn inject_error_labels_exactly_one_row() {
        let mut r = rng();
        let col = Column::from_strs(
            &["2011-01-01", "2012-02-02", "2013-03-03", "2014-04-04"],
            SourceTag::Wiki,
        );
        let (labeled, kind) = inject_error(&col, DomainKind::DateIso, &mut r).unwrap();
        assert_eq!(labeled.error_rows.len(), 1);
        let row = labeled.error_rows[0];
        assert_ne!(labeled.column.values[row], col.values[row]);
        // The other rows are untouched.
        for i in 0..col.len() {
            if i != row {
                assert_eq!(labeled.column.values[i], col.values[i]);
            }
        }
        assert!(ErrorKind::ALL.contains(&kind));
    }

    #[test]
    fn injected_value_not_already_present() {
        let mut r = rng();
        for _ in 0..50 {
            let col = Column::from_strs(&["1", "2", "3", "4", "5"], SourceTag::Web);
            if let Some((labeled, _)) = inject_error(&col, DomainKind::SmallInt, &mut r) {
                let bad = &labeled.column.values[labeled.error_rows[0]];
                let occurrences = labeled.column.values.iter().filter(|v| v == &bad).count();
                assert_eq!(occurrences, 1);
                assert!(labeled.is_error_value(bad));
            }
        }
    }

    #[test]
    fn truncation_requires_length() {
        let mut r = rng();
        assert!(
            corrupt_value("ab", DomainKind::WordLower, ErrorKind::Truncation, &mut r).is_none()
        );
        let v = corrupt_value("1865.", DomainKind::Year, ErrorKind::Truncation, &mut r);
        assert_eq!(v.unwrap(), "1865");
    }
}
