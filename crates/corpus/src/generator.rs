//! Deterministic seeded corpus generation from a [`CorpusProfile`].

use crate::column::{Column, LabeledColumn};
use crate::corpus::Corpus;
use crate::domains::DomainKind;
use crate::errors::inject_error;
use crate::mixgroup::{registry, MixGroup, MixGroupId};
use crate::profile::CorpusProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator bound to one profile; reusable for clean columns, labeled
/// columns, or a whole corpus.
pub struct CorpusGenerator {
    profile: CorpusProfile,
    groups: Vec<MixGroup>,
    /// Cumulative weights aligned with `groups`.
    cumulative: Vec<f64>,
}

impl CorpusGenerator {
    /// Builds a generator for `profile`, applying the profile's group
    /// weight boosts.
    pub fn new(profile: CorpusProfile) -> Self {
        let groups = registry();
        let mut cumulative = Vec::with_capacity(groups.len());
        let mut acc = 0.0;
        for g in &groups {
            let boost = profile.group_boost.get(g.name).copied().unwrap_or(1.0);
            acc += g.base_weight * boost;
            cumulative.push(acc);
        }
        CorpusGenerator {
            profile,
            groups,
            cumulative,
        }
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &CorpusProfile {
        &self.profile
    }

    /// The mix-group registry in use.
    pub fn groups(&self) -> &[MixGroup] {
        &self.groups
    }

    /// Samples a mix group id according to the boosted weights.
    pub fn sample_group<R: Rng>(&self, rng: &mut R) -> MixGroupId {
        let total = *self.cumulative.last().expect("registry non-empty");
        let x = rng.random_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }

    /// Generates one clean column from mix group `gid` with `len` cells.
    pub fn clean_column<R: Rng>(&self, gid: MixGroupId, len: usize, rng: &mut R) -> Column {
        let group = &self.groups[gid];
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            let d = group.sample_domain(rng);
            values.push(d.sample(rng));
        }
        Column::new(values, self.profile.source)
    }

    /// Samples a column length from the profile's range, skewed toward
    /// shorter columns (web tables are mostly short).
    pub fn sample_len<R: Rng>(&self, rng: &mut R) -> usize {
        let lo = self.profile.min_len as f64;
        let hi = self.profile.max_len as f64;
        // Squared-uniform skew: mass concentrated near `lo`.
        let u: f64 = rng.random::<f64>();
        (lo + (hi - lo) * u * u).round() as usize
    }

    /// Generates one labeled column: clean with probability
    /// `1 - dirty_rate`, otherwise with one injected error. Also returns
    /// the mix group and the dominant domain used.
    pub fn labeled_column<R: Rng>(&self, rng: &mut R) -> (LabeledColumn, MixGroupId, DomainKind) {
        let gid = self.sample_group(rng);
        let len = self.sample_len(rng);
        let col = self.clean_column(gid, len, rng);
        let domain = self.groups[gid].dominant_domain();
        if rng.random_bool(self.profile.dirty_rate) {
            if let Some((labeled, _kind)) = inject_error(&col, domain, rng) {
                return (labeled, gid, domain);
            }
        }
        (LabeledColumn::clean(col), gid, domain)
    }

    /// Generates the full corpus for the profile (labels dropped).
    pub fn generate(&self) -> Corpus {
        let mut rng = StdRng::seed_from_u64(self.profile.seed);
        let mut corpus = Corpus::new();
        for _ in 0..self.profile.n_columns {
            let (labeled, _, _) = self.labeled_column(&mut rng);
            corpus.push(labeled.column);
        }
        corpus
    }

    /// Generates the full corpus keeping labels and provenance.
    pub fn generate_labeled(&self) -> Vec<(LabeledColumn, MixGroupId, DomainKind)> {
        let mut rng = StdRng::seed_from_u64(self.profile.seed);
        (0..self.profile.n_columns)
            .map(|_| self.labeled_column(&mut rng))
            .collect()
    }
}

/// Convenience: generates the corpus for `profile`.
pub fn generate_corpus(profile: &CorpusProfile) -> Corpus {
    CorpusGenerator::new(profile.clone()).generate()
}

/// Convenience: generates labeled columns for `profile`.
pub fn generate_labeled_columns(profile: &CorpusProfile) -> Vec<LabeledColumn> {
    CorpusGenerator::new(profile.clone())
        .generate_labeled()
        .into_iter()
        .map(|(l, _, _)| l)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CorpusProfile;

    #[test]
    fn generation_is_deterministic() {
        let p = CorpusProfile::wiki(50);
        let a = generate_corpus(&p);
        let b = generate_corpus(&p);
        assert_eq!(a.len(), b.len());
        for (ca, cb) in a.columns().iter().zip(b.columns()) {
            assert_eq!(ca.values, cb.values);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut p1 = CorpusProfile::wiki(50);
        let p2 = p1.clone();
        p1.seed = 123;
        let a = generate_corpus(&p1);
        let b = generate_corpus(&p2);
        let same = a
            .columns()
            .iter()
            .zip(b.columns())
            .filter(|(x, y)| x.values == y.values)
            .count();
        assert!(same < 50, "different seeds should differ");
    }

    #[test]
    fn column_lengths_within_profile_bounds() {
        let p = CorpusProfile::web(200);
        let c = generate_corpus(&p);
        for col in c.columns() {
            assert!(col.len() >= p.min_len);
            assert!(col.len() <= p.max_len);
        }
    }

    #[test]
    fn dirty_rate_roughly_respected() {
        let mut p = CorpusProfile::web(2000);
        p.dirty_rate = 0.10;
        let labeled = generate_labeled_columns(&p);
        let dirty = labeled.iter().filter(|l| l.is_dirty()).count();
        // Expect ~200 ± generous tolerance.
        assert!((100..=320).contains(&dirty), "dirty count {dirty}");
    }

    #[test]
    fn clean_columns_have_no_error_rows() {
        let mut p = CorpusProfile::wiki(100);
        p.dirty_rate = 0.0;
        let labeled = generate_labeled_columns(&p);
        assert!(labeled.iter().all(|l| !l.is_dirty()));
    }

    #[test]
    fn boosted_groups_occur_more_often() {
        // Ent-XLS heavily boosts currency; WIKI suppresses it relative to
        // score_dash. Compare group frequencies.
        let ent = CorpusGenerator::new(CorpusProfile::ent_xls(3000));
        let wiki = CorpusGenerator::new(CorpusProfile::wiki(3000));
        let count = |g: &CorpusGenerator, name: &str| {
            let gid = g.groups().iter().position(|x| x.name == name).unwrap();
            g.generate_labeled()
                .iter()
                .filter(|(_, id, _)| *id == gid)
                .count()
        };
        let ent_currency = count(&ent, "currency");
        let wiki_currency = count(&wiki, "currency");
        assert!(
            ent_currency > wiki_currency,
            "ent {ent_currency} vs wiki {wiki_currency}"
        );
        let ent_score = count(&ent, "score_dash");
        let wiki_score = count(&wiki, "score_dash");
        assert!(
            wiki_score > ent_score,
            "wiki {wiki_score} vs ent {ent_score}"
        );
    }

    #[test]
    fn sample_group_covers_registry() {
        let g = CorpusGenerator::new(CorpusProfile::web(1));
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = vec![false; g.groups().len()];
        for _ in 0..20_000 {
            seen[g.sample_group(&mut rng)] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(
            covered >= g.groups().len() - 2,
            "only {covered}/{} groups sampled",
            g.groups().len()
        );
    }
}
