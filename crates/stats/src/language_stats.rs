//! Per-language corpus statistics and NPMI scoring of value pairs.

use crate::fxhash::FxHashMap;
use crate::memo::NpmiMemo;
use crate::npmi::{npmi_from_counts, NpmiParams};
use crate::store::{CoocBackend, SketchSpec, OCC_ENTRY_BYTES};
use adt_corpus::Corpus;
use adt_patterns::{Language, Pattern, PatternHash};
use serde::{Deserialize, Serialize};

/// Construction parameters for [`LanguageStats`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StatsConfig {
    /// Cap on distinct patterns per column used for pair generation; a
    /// column with more distinct patterns contributes a deterministic
    /// subsample. Guards the quadratic pair blowup on fine languages.
    pub max_distinct_per_column: usize,
    /// When set, co-occurrence counts go into a count-min sketch instead
    /// of an exact dictionary (§3.4).
    pub sketch: Option<SketchSpec>,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            max_distinct_per_column: 24,
            sketch: None,
        }
    }
}

/// Occurrence and co-occurrence statistics of one generalization language
/// over one corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LanguageStats {
    /// The language the statistics were computed under.
    pub language: Language,
    /// Number of corpus columns scanned (`|C|` in Equations 1–2).
    pub n_columns: u64,
    /// `c(p)`: number of columns containing pattern `p`. Keyed through
    /// the deterministic fast hasher — pattern hashes are already
    /// well-mixed, so SipHash would only slow the probe hot path.
    occ: FxHashMap<u64, u32>,
    /// `c(p1, p2)`: number of columns containing both patterns.
    cooc: CoocBackend,
}

impl LanguageStats {
    /// An empty statistics accumulator for `language`; feed it with
    /// [`LanguageStats::absorb_column`].
    pub fn empty(language: Language, config: &StatsConfig) -> Self {
        LanguageStats {
            language,
            n_columns: 0,
            occ: FxHashMap::default(),
            cooc: match &config.sketch {
                Some(spec) => CoocBackend::sketch(*spec),
                None => CoocBackend::exact(),
            },
        }
    }

    /// Scans `corpus` and builds the statistics for `language`.
    ///
    /// With a sketch configured, co-occurrence is accumulated **exactly**
    /// during the scan and finalized into the sketch at the end (sorted
    /// replay; see [`CoocBackend::to_sketch`]). This makes the result a
    /// pure function of the corpus *contents* — conservative count-min
    /// updates are order-dependent, so streaming them during the scan
    /// would bake column order into the counters — and it is what lets
    /// the sharded training pipeline (`crate::pipeline`) reproduce this
    /// build bit-for-bit at any thread count. The trade-off is that peak
    /// memory during a sketched build briefly reaches the exact size;
    /// [`LanguageStats::empty`] + [`LanguageStats::absorb_column`] keeps
    /// the old bounded-memory streaming semantics for callers that need
    /// them.
    pub fn build(language: Language, corpus: &Corpus, config: &StatsConfig) -> Self {
        let exact_config = StatsConfig {
            sketch: None,
            ..*config
        };
        let mut stats = LanguageStats::empty(language, &exact_config);
        // Memoize value -> pattern hash for this language; corpora repeat
        // values heavily (years, placeholders, common words).
        let mut memo: FxHashMap<&str, PatternHash> = FxHashMap::default();
        for col in corpus.columns() {
            stats.absorb_column_memo(col, &exact_config, Some(&mut memo));
        }
        if let Some(spec) = config.sketch {
            stats.compress_cooccurrence(spec);
        }
        stats
    }

    /// Incrementally absorbs one column into the statistics (the corpus
    /// grows; no rebuild needed). Equivalent to having included the
    /// column in the original [`LanguageStats::build`] scan.
    pub fn absorb_column(&mut self, column: &adt_corpus::Column, config: &StatsConfig) {
        self.absorb_column_memo(column, config, None);
    }

    fn absorb_column_memo<'a>(
        &mut self,
        column: &'a adt_corpus::Column,
        config: &StatsConfig,
        memo: Option<&mut FxHashMap<&'a str, PatternHash>>,
    ) {
        let language = self.language;
        let mut hashes: Vec<PatternHash> = Vec::new();
        match memo {
            Some(memo) => {
                for v in column.distinct_values() {
                    if v.is_empty() {
                        continue;
                    }
                    let h = *memo
                        .entry(v)
                        .or_insert_with(|| Pattern::hash_value(v, &language));
                    hashes.push(h);
                }
            }
            None => {
                for v in column.distinct_values() {
                    if v.is_empty() {
                        continue;
                    }
                    hashes.push(Pattern::hash_value(v, &language));
                }
            }
        }
        self.absorb_column_hashes(&mut hashes, config);
    }

    /// The column-absorb tail shared by the per-language scan and the
    /// sharded pipeline: counts the column, sorts/dedups its pattern
    /// hashes, applies the deterministic strided subsample, and updates
    /// occ/cooc. `hashes` holds one entry per distinct non-empty value
    /// (duplicate pattern hashes allowed; dedup happens here) and is left
    /// cleared with its capacity intact so callers can reuse the buffer
    /// across columns. Keeping this on one code path is what makes the
    /// per-language scan and the sharded pipeline provably identical per
    /// column.
    pub(crate) fn absorb_column_hashes(
        &mut self,
        hashes: &mut Vec<PatternHash>,
        config: &StatsConfig,
    ) {
        self.n_columns += 1;
        hashes.sort_unstable();
        hashes.dedup();
        // Deterministic subsample when a column has too many distinct
        // patterns: keep a strided selection (compacted in place).
        if hashes.len() > config.max_distinct_per_column {
            let stride = hashes.len() / config.max_distinct_per_column + 1;
            let mut kept = 0usize;
            let mut next = 0usize;
            while next < hashes.len() {
                hashes[kept] = hashes[next];
                kept += 1;
                next += stride;
            }
            hashes.truncate(kept);
        }
        for &h in hashes.iter() {
            *self.occ.entry(h.0).or_insert(0) += 1;
        }
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                self.cooc.add_pair(hashes[i], hashes[j], 1);
            }
        }
        hashes.clear();
    }

    /// Merges statistics accumulated over a disjoint column shard of the
    /// same corpus (same language, same backend kind): column counts and
    /// occ/cooc entries add. Exact backends merge exactly, so splitting a
    /// corpus into shards, absorbing each, and merging equals one
    /// sequential scan — the primitive behind the sharded training
    /// pipeline and incremental corpus absorption.
    pub fn merge_from(&mut self, other: &LanguageStats) -> Result<(), &'static str> {
        if self.language != other.language {
            return Err("language mismatch");
        }
        self.n_columns += other.n_columns;
        for (&k, &v) in other.occ.iter() {
            *self.occ.entry(k).or_insert(0) += v;
        }
        self.cooc.merge_from(&other.cooc)
    }

    /// `c(p)` for a pattern hash.
    pub fn occurrence(&self, p: PatternHash) -> u64 {
        self.occ.get(&p.0).copied().unwrap_or(0) as u64
    }

    /// `c(p1, p2)` for a pattern pair (estimate under a sketch backend).
    pub fn cooccurrence(&self, p1: PatternHash, p2: PatternHash) -> u64 {
        if p1 == p2 {
            // Diagonal: a pattern trivially co-occurs with itself in every
            // column it appears in; NPMI(p, p) = 1 falls out of this.
            return self.occurrence(p1);
        }
        self.cooc.get(p1, p2)
    }

    /// NPMI of two pattern hashes under this language's statistics.
    pub fn npmi_patterns(&self, p1: PatternHash, p2: PatternHash, params: NpmiParams) -> f64 {
        if p1 == p2 {
            return 1.0;
        }
        npmi_from_counts(
            self.occurrence(p1),
            self.occurrence(p2),
            self.cooccurrence(p1, p2),
            self.n_columns,
            params,
        )
    }

    /// Batched NPMI over a set of *distinct* pattern hashes: the flattened
    /// symmetric `d′×d′` matrix with diagonal `1.0` (a pattern is always
    /// compatible with itself), one [`LanguageStats::npmi_patterns`]
    /// evaluation per off-diagonal pair.
    ///
    /// This is the pattern-group scoring kernel's probe stage: callers
    /// dedupe a column's values into distinct patterns first, so the
    /// matrix is `d′×d′` instead of `d×d` (`d′ ≤ d`, typically ≪). With a
    /// `memo`, pair scores previously computed by the same worker — across
    /// columns and requests — are reused instead of recomputed; memo use
    /// never changes a score, only [`NpmiMatrix::probes`] vs
    /// [`NpmiMatrix::memo_hits`].
    pub fn npmi_matrix(
        &self,
        patterns: &[PatternHash],
        params: NpmiParams,
        mut memo: Option<&mut NpmiMemo>,
    ) -> NpmiMatrix {
        let dim = patterns.len();
        let mut values = vec![1.0f64; dim * dim];
        let mut probes = 0u64;
        let mut memo_hits = 0u64;
        for i in 0..dim {
            for j in (i + 1)..dim {
                let (a, b) = (patterns[i], patterns[j]);
                let s = match memo.as_deref_mut() {
                    Some(memo) => match memo.lookup(a, b) {
                        Some(s) => {
                            memo_hits += 1;
                            s
                        }
                        None => {
                            let s = self.npmi_patterns(a, b, params);
                            memo.insert(a, b, s);
                            probes += 1;
                            s
                        }
                    },
                    None => {
                        probes += 1;
                        self.npmi_patterns(a, b, params)
                    }
                };
                values[i * dim + j] = s;
                values[j * dim + i] = s;
            }
        }
        NpmiMatrix {
            dim,
            values,
            probes,
            memo_hits,
        }
    }

    /// The paper's `s_k(u, v) = NPMI(L_k(u), L_k(v))`: generalizes both
    /// values under this language and scores the patterns.
    pub fn score_values(&self, u: &str, v: &str, params: NpmiParams) -> f64 {
        let pu = Pattern::hash_value(u, &self.language);
        let pv = Pattern::hash_value(v, &self.language);
        self.npmi_patterns(pu, pv, params)
    }

    /// Pattern hash of a value under this language.
    pub fn pattern_of(&self, v: &str) -> PatternHash {
        Pattern::hash_value(v, &self.language)
    }

    /// Number of distinct patterns seen.
    pub fn distinct_patterns(&self) -> usize {
        self.occ.len()
    }

    /// Memory footprint `size(L)` in bytes: occurrence dictionary plus the
    /// co-occurrence backend.
    pub fn size_bytes(&self) -> usize {
        self.occ.len() * OCC_ENTRY_BYTES + self.cooc.bytes()
    }

    /// Replaces the exact co-occurrence dictionary with a count-min sketch
    /// of the given geometry (Figure 8(a)'s compression configurations).
    pub fn compress_cooccurrence(&mut self, spec: SketchSpec) {
        self.cooc = self.cooc.to_sketch(spec);
    }

    /// Number of exact co-occurrence entries, when exact.
    pub fn exact_cooc_entries(&self) -> Option<usize> {
        self.cooc.exact_entries()
    }

    /// Sorted `(lo, hi, count)` co-occurrence entries, when exact (see
    /// [`CoocBackend::exact_pair_entries`]).
    pub fn exact_cooc_pairs(&self) -> Option<Vec<(u64, u64, u32)>> {
        self.cooc.exact_pair_entries()
    }

    /// Co-occurrence backend footprint in bytes — the quantity the
    /// streaming pipeline bounds (occurrence entries are linear and stay
    /// exact in every mode).
    pub fn cooc_bytes(&self) -> usize {
        self.cooc.bytes()
    }

    /// The co-occurrence count-min sketch, when the backend is a sketch
    /// (streaming accumulators or compressed builds).
    pub fn cooc_sketch(&self) -> Option<&adt_sketch::CountMinSketch> {
        match &self.cooc {
            CoocBackend::Sketch(cms) => Some(cms),
            CoocBackend::Exact(_) => None,
        }
    }

    /// Occurrence dictionary accessor (codec support).
    pub(crate) fn occ_map(&self) -> &FxHashMap<u64, u32> {
        &self.occ
    }

    /// Co-occurrence backend accessor (codec support).
    pub(crate) fn cooc_backend(&self) -> &CoocBackend {
        &self.cooc
    }

    /// Reassembles statistics from raw parts (codec support).
    pub(crate) fn from_parts(
        language: Language,
        n_columns: u64,
        occ: FxHashMap<u64, u32>,
        cooc: CoocBackend,
    ) -> Self {
        LanguageStats {
            language,
            n_columns,
            occ,
            cooc,
        }
    }
}

/// Result of [`LanguageStats::npmi_matrix`]: the flattened symmetric
/// score matrix plus the probe accounting that makes kernel wins
/// observable.
#[derive(Debug, Clone)]
pub struct NpmiMatrix {
    /// Matrix dimension (number of input patterns).
    pub dim: usize,
    /// Flattened row-major `dim×dim` scores; symmetric, diagonal `1.0`.
    pub values: Vec<f64>,
    /// Fresh NPMI evaluations performed (occ/cooc probes + arithmetic).
    pub probes: u64,
    /// Entries served from the memo without recomputation.
    pub memo_hits: u64,
}

impl NpmiMatrix {
    /// The score at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.dim + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::{Column, SourceTag};

    fn corpus_of(cols: &[&[&str]]) -> Corpus {
        Corpus::from_columns(
            cols.iter()
                .map(|vals| Column::from_strs(vals, SourceTag::Web))
                .collect(),
        )
    }

    fn no_smooth() -> NpmiParams {
        NpmiParams { smoothing: 0.0 }
    }

    #[test]
    fn counts_are_column_level_not_cell_level() {
        // "5" appears twice in the first column but should count once.
        let c = corpus_of(&[&["5", "5", "7"], &["5", "9"]]);
        let stats = LanguageStats::build(Language::leaf(), &c, &StatsConfig::default());
        let p5 = stats.pattern_of("5");
        assert_eq!(stats.occurrence(p5), 2);
        let p7 = stats.pattern_of("7");
        assert_eq!(stats.occurrence(p7), 1);
        assert_eq!(stats.cooccurrence(p5, p7), 1);
        assert_eq!(stats.n_columns, 2);
    }

    #[test]
    fn same_pattern_values_score_one() {
        let c = corpus_of(&[&["2011-01-01", "2012-02-02"]]);
        let stats = LanguageStats::build(Language::paper_l2(), &c, &StatsConfig::default());
        // Under L2 both are \D[4]\S\D[2]\S\D[2]; identical patterns -> 1.
        assert_eq!(
            stats.score_values("1918-01-01", "2018-12-31", no_smooth()),
            1.0
        );
    }

    #[test]
    fn cooccurring_patterns_score_high_nonccurring_low() {
        // Corpus: ints and comma-numbers co-occur; iso and slash dates don't.
        let mut cols: Vec<&[&str]> = Vec::new();
        let int_cols: Vec<Vec<&str>> = vec![
            vec!["1", "1,000"],
            vec!["2", "2,000"],
            vec!["3", "3,000"],
            vec!["7", "9"],
        ];
        let date_cols: Vec<Vec<&str>> = vec![
            vec!["2011-01-01", "2012-02-02"],
            vec!["2011/01/01", "2012/02/02"],
        ];
        for c in &int_cols {
            cols.push(c);
        }
        for c in &date_cols {
            cols.push(c);
        }
        let corpus = corpus_of(&cols);
        let stats = LanguageStats::build(
            adt_patterns::crude::crude_language(),
            &corpus,
            &StatsConfig::default(),
        );
        let compat = stats.score_values("4", "4,000", no_smooth());
        let incompat = stats.score_values("2013-03-03", "2013/03/03", no_smooth());
        assert!(compat > 0.0, "compat={compat}");
        assert!(incompat <= -0.99, "incompat={incompat}");
    }

    #[test]
    fn distinct_cap_limits_pairs() {
        let values: Vec<String> = (0..100).map(|i| format!("word{i}x")).collect();
        let refs: Vec<&str> = values.iter().map(|s| s.as_str()).collect();
        let corpus = corpus_of(&[&refs]);
        let config = StatsConfig {
            max_distinct_per_column: 8,
            sketch: None,
        };
        let stats = LanguageStats::build(Language::leaf(), &corpus, &config);
        let entries = stats.exact_cooc_entries().unwrap();
        assert!(entries <= 8 * 7 / 2, "got {entries} pairs");
    }

    #[test]
    fn sketch_backend_scores_close_to_exact() {
        let mut cols: Vec<Vec<String>> = Vec::new();
        for i in 0..200 {
            cols.push(vec![format!("{i}"), format!("{},000", i)]);
        }
        let corpus = Corpus::from_columns(
            cols.iter()
                .map(|c| Column::new(c.clone(), SourceTag::Web))
                .collect(),
        );
        let exact = LanguageStats::build(
            adt_patterns::crude::crude_language(),
            &corpus,
            &StatsConfig::default(),
        );
        let sketched = LanguageStats::build(
            adt_patterns::crude::crude_language(),
            &corpus,
            &StatsConfig {
                max_distinct_per_column: 24,
                sketch: Some(SketchSpec {
                    budget_bytes: 1 << 16,
                    ..SketchSpec::default()
                }),
            },
        );
        let se = exact.score_values("7", "7,000", no_smooth());
        let ss = sketched.score_values("7", "7,000", no_smooth());
        assert!((se - ss).abs() < 0.1, "exact {se} vs sketch {ss}");
    }

    #[test]
    fn compress_cooccurrence_shrinks_size() {
        let mut cols: Vec<Vec<String>> = Vec::new();
        for i in 0..500 {
            cols.push(vec![
                format!("a{i}"),
                format!("b{i}"),
                format!("c{i}"),
                format!("d{i}"),
            ]);
        }
        let corpus = Corpus::from_columns(
            cols.into_iter()
                .map(|c| Column::new(c, SourceTag::Web))
                .collect(),
        );
        let mut stats = LanguageStats::build(Language::leaf(), &corpus, &StatsConfig::default());
        let before = stats.size_bytes();
        stats.compress_cooccurrence(SketchSpec {
            budget_bytes: 1 << 12,
            ..SketchSpec::default()
        });
        let after = stats.size_bytes();
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn empty_values_ignored() {
        let c = corpus_of(&[&["", "x", ""]]);
        let stats = LanguageStats::build(Language::leaf(), &c, &StatsConfig::default());
        assert_eq!(stats.distinct_patterns(), 1);
    }

    #[test]
    fn absorb_column_matches_batch_build() {
        let cols = [
            vec!["2011-01-01", "2012-02-02"],
            vec!["1", "1,000", "2"],
            vec!["x", "y"],
        ];
        let config = StatsConfig::default();
        let all = corpus_of(&[&cols[0][..], &cols[1][..], &cols[2][..]]);
        let batch = LanguageStats::build(Language::paper_l2(), &all, &config);

        let mut inc = LanguageStats::empty(Language::paper_l2(), &config);
        for c in all.columns() {
            inc.absorb_column(c, &config);
        }
        assert_eq!(inc.n_columns, batch.n_columns);
        assert_eq!(inc.distinct_patterns(), batch.distinct_patterns());
        assert_eq!(inc.size_bytes(), batch.size_bytes());
        let p1 = batch.pattern_of("2011-01-01");
        let p2 = batch.pattern_of("1,000");
        assert_eq!(inc.occurrence(p1), batch.occurrence(p1));
        assert_eq!(inc.cooccurrence(p1, p2), batch.cooccurrence(p1, p2));
    }

    #[test]
    fn npmi_matrix_matches_pairwise_scores() {
        let c = corpus_of(&[
            &["1", "1,000"],
            &["2", "2,000"],
            &["2011-01-01", "2012-02-02"],
            &["2011/01/01", "2012/02/02"],
        ]);
        let stats = LanguageStats::build(
            adt_patterns::crude::crude_language(),
            &c,
            &StatsConfig::default(),
        );
        let params = NpmiParams::default();
        let patterns = [
            stats.pattern_of("7"),
            stats.pattern_of("9,000"),
            stats.pattern_of("2013-03-03"),
        ];
        let m = stats.npmi_matrix(&patterns, params, None);
        assert_eq!(m.dim, 3);
        assert_eq!(m.probes, 3); // C(3, 2)
        assert_eq!(m.memo_hits, 0);
        for i in 0..3 {
            assert_eq!(m.at(i, i), 1.0);
            for j in 0..3 {
                assert_eq!(m.at(i, j), m.at(j, i));
                if i != j {
                    assert_eq!(
                        m.at(i, j),
                        stats.npmi_patterns(patterns[i], patterns[j], params)
                    );
                }
            }
        }
    }

    #[test]
    fn npmi_matrix_memo_reuses_scores_across_calls() {
        let c = corpus_of(&[&["1", "1,000"], &["2", "2,000"]]);
        let stats = LanguageStats::build(
            adt_patterns::crude::crude_language(),
            &c,
            &StatsConfig::default(),
        );
        let params = NpmiParams::default();
        let patterns = [
            stats.pattern_of("7"),
            stats.pattern_of("9,000"),
            stats.pattern_of("x"),
        ];
        let mut memo = crate::NpmiMemo::new();
        let cold = stats.npmi_matrix(&patterns, params, Some(&mut memo));
        assert_eq!(cold.probes, 3);
        assert_eq!(cold.memo_hits, 0);
        let warm = stats.npmi_matrix(&patterns, params, Some(&mut memo));
        assert_eq!(warm.probes, 0);
        assert_eq!(warm.memo_hits, 3);
        assert_eq!(warm.values, cold.values);
    }

    #[test]
    fn coarser_language_fewer_patterns() {
        let c = corpus_of(&[
            &["2011-01-01", "2012-02-02", "abc", "XYZ"],
            &["1", "2", "3,000"],
        ]);
        let fine = LanguageStats::build(Language::leaf(), &c, &StatsConfig::default());
        let coarse = LanguageStats::build(Language::root(), &c, &StatsConfig::default());
        assert!(coarse.distinct_patterns() <= fine.distinct_patterns());
    }
}
