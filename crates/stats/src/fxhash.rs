//! A vendored FxHash-style hasher for the statistics hot paths.
//!
//! The occurrence/co-occurrence dictionaries and the kernel memo tables
//! are keyed by pattern hashes that are already well-mixed 64-bit values
//! (FNV-1a over token streams), so SipHash's DoS hardening buys nothing
//! here while costing most of the probe time. This is the rustc
//! multiply-rotate scheme: one rotate, one xor, one multiply per word.
//! It is fully deterministic (no per-process seed), which the engine's
//! byte-identical-across-thread-counts guarantee and the binary codec's
//! sorted encodings both rely on.
//!
//! Vendored in-tree because the build must work in air-gapped containers
//! with no registry access; the implementation is ~40 lines.

// adt-allow(determinism): this is the FxHashMap definition site; std maps are re-exported with the deterministic hasher below
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// 2^64 / φ, the multiplicative mixing constant used by rustc's FxHash.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The hasher state: a single 64-bit accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" stay distinct.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Builds [`FxHasher`]s; stateless, so every map starts identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>; // adt-allow(determinism): alias definition; hasher is seedless and deterministic
/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>; // adt-allow(determinism): alias definition; hasher is seedless and deterministic

/// Hashes one value with [`FxHasher`] (fingerprints, cache keys).
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_maps() {
        let a = fx_hash_one(&(42u64, 7u64));
        let b = fx_hash_one(&(42u64, 7u64));
        assert_eq!(a, b);
        let mut m1: FxHashMap<u64, u32> = FxHashMap::default();
        let mut m2: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m1.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i as u32);
            m2.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i as u32);
        }
        assert_eq!(m1, m2);
        assert_eq!(m1.len(), 1000);
    }

    #[test]
    fn distinguishes_values_and_lengths() {
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
        let mut h1 = FxHasher::default();
        h1.write(b"ab");
        let mut h2 = FxHasher::default();
        h2.write(b"ab\0");
        assert_ne!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"abcdefgh");
        let mut h4 = FxHasher::default();
        h4.write(b"abcdefg");
        assert_ne!(h3.finish(), h4.finish());
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential u64 keys must not collapse to a few buckets.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0..256u64 {
            low_bits.insert(fx_hash_one(&i) & 0xFF);
        }
        assert!(low_bits.len() > 100, "only {} buckets hit", low_bits.len());
    }
}
