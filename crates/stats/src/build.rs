//! Batch statistics construction across candidate languages.
//!
//! Language selection (§3.2) needs statistics for all 144 candidates.
//! These entry points run the corpus-major [`TrainPipeline`]: the corpus
//! is interned once, every interned value is generalized under a whole
//! batch of languages in one character traversal, and columns are
//! sharded across threads into thread-local accumulators that merge
//! deterministically. Results are bit-identical to the per-language
//! serial scan ([`LanguageStats::build`]) at any thread count; the old
//! language-major fan-out survives as [`collect_stats_reference`] behind
//! `cfg(any(test, feature = "reference-kernel"))` for differential tests
//! and benchmarks.

use crate::language_stats::{LanguageStats, StatsConfig};
use crate::pipeline::{PipelineOptions, PipelineReport, StatsError, TrainPipeline};
use adt_corpus::Corpus;
use adt_patterns::Language;

/// Builds statistics for every language in `languages` over `corpus`
/// through the sharded pipeline, consuming each completed
/// [`LanguageStats`] with `f(language_index, stats)`. Consumption runs in
/// parallel within a language batch (`f` must be `Sync`); the returned
/// results are in input-language order alongside the pipeline's counter
/// report.
pub fn for_each_language_stats<R, F>(
    languages: &[Language],
    corpus: &Corpus,
    config: &StatsConfig,
    opts: &PipelineOptions,
    f: F,
) -> Result<(Vec<R>, PipelineReport), StatsError>
where
    R: Send,
    F: Fn(usize, LanguageStats) -> R + Sync,
{
    let mut pipe = TrainPipeline::new(corpus, opts)?;
    let out = pipe.run(languages, config, f)?;
    Ok((out, *pipe.report()))
}

/// Builds statistics for every language, folding each completed
/// [`LanguageStats`] serially on the calling thread in input-language
/// order. Memory stays bounded by the pipeline's language batch size:
/// each batch is built, folded, and dropped before the next starts.
/// `opts` carries the thread count and the co-occurrence mode — the
/// online learner routes its streaming geometry through here.
pub fn build_stats_for_languages<F>(
    languages: &[Language],
    corpus: &Corpus,
    config: &StatsConfig,
    opts: &PipelineOptions,
    mut fold: F,
) -> Result<PipelineReport, StatsError>
where
    F: FnMut(LanguageStats),
{
    let mut pipe = TrainPipeline::new(corpus, opts)?;
    let batch_size = pipe.lang_batch();
    for (bi, batch) in languages.chunks(batch_size).enumerate() {
        let stats = pipe.run_batch(bi * batch_size, batch, config, &|_, s| s)?;
        for s in stats {
            fold(s);
        }
    }
    Ok(*pipe.report())
}

/// Convenience: builds and collects statistics for all languages in
/// input order (memory-heavy; the whole language set's statistics are
/// alive at once).
pub fn collect_stats_for_languages(
    languages: &[Language],
    corpus: &Corpus,
    config: &StatsConfig,
    threads: usize,
) -> Result<Vec<LanguageStats>, StatsError> {
    let opts = PipelineOptions {
        threads,
        ..PipelineOptions::default()
    };
    Ok(for_each_language_stats(languages, corpus, config, &opts, |_, s| s)?.0)
}

/// The pre-pipeline language-major build: one full corpus scan per
/// language, fanned out over crossbeam scoped threads. Kept as the
/// ground truth for differential tests and as the benchmark baseline the
/// pipeline's speedup is measured against.
#[cfg(any(test, feature = "reference-kernel"))]
pub fn collect_stats_reference(
    languages: &[Language],
    corpus: &Corpus,
    config: &StatsConfig,
    threads: usize,
) -> Result<Vec<LanguageStats>, StatsError> {
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = threads.max(1).min(languages.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<LanguageStats>>> =
        (0..languages.len()).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&lang) = languages.get(i) else { break };
                let stats = LanguageStats::build(lang, corpus, config);
                if let Some(slot) = slots.get(i) {
                    *slot.lock() = Some(stats);
                }
            });
        }
    })
    .map_err(|_| StatsError::WorkerPanicked("reference build"))?;
    let mut out = Vec::with_capacity(languages.len());
    for slot in slots {
        out.push(
            slot.into_inner()
                .ok_or(StatsError::WorkerPanicked("reference build"))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::{Column, SourceTag};
    use adt_patterns::enumerate_coarse_languages;

    fn small_corpus() -> Corpus {
        let cols: Vec<Column> = (0..50)
            .map(|i| {
                Column::from_strs(&[&format!("{i}"), &format!("{i},000"), "x"], SourceTag::Web)
            })
            .collect();
        Corpus::from_columns(cols)
    }

    fn stats_bytes(s: &LanguageStats) -> Vec<u8> {
        let mut buf = Vec::new();
        s.write_binary(&mut buf).expect("in-memory write");
        buf
    }

    #[test]
    fn pipeline_matches_reference_bit_for_bit() {
        let corpus = small_corpus();
        let langs = enumerate_coarse_languages();
        let config = StatsConfig::default();
        let reference = collect_stats_reference(&langs, &corpus, &config, 2).unwrap();
        for threads in [1, 2, 4, 8] {
            let pipeline = collect_stats_for_languages(&langs, &corpus, &config, threads).unwrap();
            assert_eq!(pipeline.len(), langs.len());
            for ((lang, r), p) in langs.iter().zip(&reference).zip(&pipeline) {
                assert_eq!(p.language, *lang);
                assert_eq!(
                    stats_bytes(r),
                    stats_bytes(p),
                    "stats diverged for {lang:?} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn fold_sees_every_language_in_order() {
        let corpus = small_corpus();
        let langs = enumerate_coarse_languages();
        let mut seen = Vec::new();
        let opts = PipelineOptions {
            threads: 3,
            ..PipelineOptions::default()
        };
        let report =
            build_stats_for_languages(&langs, &corpus, &StatsConfig::default(), &opts, |s| {
                seen.push(s.language)
            })
            .unwrap();
        assert_eq!(seen, langs);
        assert_eq!(report.languages, langs.len() as u64);
        assert_eq!(report.columns, corpus.len() as u64);
    }

    #[test]
    fn for_each_indices_follow_input_order() {
        let corpus = small_corpus();
        let langs = enumerate_coarse_languages();
        let (indexed, report) = for_each_language_stats(
            &langs,
            &corpus,
            &StatsConfig::default(),
            &PipelineOptions {
                threads: 2,
                lang_batch: 5, // force several batches
                ..PipelineOptions::default()
            },
            |i, s| (i, s.language),
        )
        .unwrap();
        let expect: Vec<(usize, adt_patterns::Language)> =
            langs.iter().copied().enumerate().collect();
        assert_eq!(indexed, expect);
        assert!(report.batches >= 2);
    }

    #[test]
    fn single_thread_works() {
        let corpus = small_corpus();
        let langs = [adt_patterns::Language::paper_l1()];
        let out = collect_stats_for_languages(&langs, &corpus, &StatsConfig::default(), 1).unwrap();
        assert_eq!(out.len(), 1);
    }
}
