//! Parallel statistics construction across candidate languages.
//!
//! Language selection (§3.2) needs statistics for all 144 candidates. Each
//! language's scan is independent, so we fan languages out over crossbeam
//! scoped threads that share the read-only corpus. Memory stays bounded by
//! processing languages in batches and letting the caller fold each result
//! (typically: score the training set, then drop the statistics).

use crate::language_stats::{LanguageStats, StatsConfig};
use adt_corpus::Corpus;
use adt_patterns::Language;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Builds statistics for every language in `languages` over `corpus`,
/// calling `fold` with each completed [`LanguageStats`] (in arbitrary
/// order). `fold` runs under a mutex, so it may mutate shared state
/// without further synchronization; keep it cheap relative to the scan.
pub fn build_stats_for_languages<F>(
    languages: &[Language],
    corpus: &Corpus,
    config: &StatsConfig,
    threads: usize,
    fold: F,
) where
    F: FnMut(LanguageStats) + Send,
{
    let threads = threads.max(1).min(languages.len().max(1));
    let next = AtomicUsize::new(0);
    let fold = Mutex::new(fold);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= languages.len() {
                    break;
                }
                let stats = LanguageStats::build(languages[i], corpus, config);
                (fold.lock())(stats);
            });
        }
    })
    .expect("worker thread panicked");
}

/// Convenience: builds and collects statistics for all languages
/// (memory-heavy; only use for small language sets or small corpora).
pub fn collect_stats_for_languages(
    languages: &[Language],
    corpus: &Corpus,
    config: &StatsConfig,
    threads: usize,
) -> Vec<LanguageStats> {
    let mut out: Vec<LanguageStats> = Vec::with_capacity(languages.len());
    build_stats_for_languages(languages, corpus, config, threads, |s| out.push(s));
    // Restore the input order for determinism.
    out.sort_by_key(|s| {
        languages
            .iter()
            .position(|l| *l == s.language)
            .expect("language came from input set")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::{Column, SourceTag};
    use adt_patterns::enumerate_coarse_languages;

    fn small_corpus() -> Corpus {
        let cols: Vec<Column> = (0..50)
            .map(|i| {
                Column::from_strs(&[&format!("{i}"), &format!("{i},000"), "x"], SourceTag::Web)
            })
            .collect();
        Corpus::from_columns(cols)
    }

    #[test]
    fn parallel_matches_serial() {
        let corpus = small_corpus();
        let langs = enumerate_coarse_languages();
        let config = StatsConfig::default();
        let parallel = collect_stats_for_languages(&langs, &corpus, &config, 4);
        assert_eq!(parallel.len(), langs.len());
        for (lang, stats) in langs.iter().zip(&parallel) {
            let serial = LanguageStats::build(*lang, &corpus, &config);
            assert_eq!(stats.language, *lang);
            assert_eq!(stats.n_columns, serial.n_columns);
            assert_eq!(stats.distinct_patterns(), serial.distinct_patterns());
            assert_eq!(stats.size_bytes(), serial.size_bytes());
        }
    }

    #[test]
    fn fold_sees_every_language() {
        let corpus = small_corpus();
        let langs = enumerate_coarse_languages();
        let mut n = 0usize;
        build_stats_for_languages(&langs, &corpus, &StatsConfig::default(), 3, |_| n += 1);
        assert_eq!(n, langs.len());
    }

    #[test]
    fn single_thread_works() {
        let corpus = small_corpus();
        let langs = [adt_patterns::Language::paper_l1()];
        let out = collect_stats_for_languages(&langs, &corpus, &StatsConfig::default(), 1);
        assert_eq!(out.len(), 1);
    }
}
