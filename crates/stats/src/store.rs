//! Storage backends for occurrence and co-occurrence counts.

use crate::fxhash::FxHashMap;
use adt_patterns::PatternHash;
use adt_sketch::{CountMinSketch, UpdateStrategy};
use serde::{Deserialize, Serialize};

/// Bytes per exact occurrence entry (u64 key + u32 count, padded).
pub const OCC_ENTRY_BYTES: usize = 16;
/// Bytes per exact co-occurrence entry (two u64 keys + u32 count, padded).
pub const COOC_ENTRY_BYTES: usize = 24;

/// Geometry of a count-min sketch backend.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SketchSpec {
    /// Total counter-table budget in bytes.
    pub budget_bytes: usize,
    /// Number of rows (hash functions).
    pub depth: usize,
    /// Update strategy.
    pub strategy: UpdateStrategy,
    /// Seed for the hash family.
    pub seed: u64,
}

impl Default for SketchSpec {
    fn default() -> Self {
        SketchSpec {
            budget_bytes: 4 << 20,
            depth: 4,
            strategy: UpdateStrategy::Conservative,
            seed: 0xC0FFEE,
        }
    }
}

/// Co-occurrence counts: exact dictionary or count-min sketch (§3.4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CoocBackend {
    /// Exact ordered-pair dictionary.
    ///
    /// Serialized as a list of `(lo, hi, count)` entries: JSON object keys
    /// must be strings, so the tuple-keyed map cannot serialize natively.
    Exact(#[serde(with = "pair_map_serde")] FxHashMap<(u64, u64), u32>),
    /// Count-min sketch over packed pair keys.
    Sketch(CountMinSketch),
}

// Only referenced through the `#[serde(with = ...)]` attribute; the
// offline stub derive drops that attribute, so allow dead_code there.
#[allow(dead_code)]
mod pair_map_serde {
    use crate::fxhash::FxHashMap;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(
        map: &FxHashMap<(u64, u64), u32>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(u64, u64, u32)> = map.iter().map(|(&(a, b), &c)| (a, b, c)).collect();
        entries.sort_unstable();
        entries.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<FxHashMap<(u64, u64), u32>, D::Error> {
        let entries = Vec::<(u64, u64, u32)>::deserialize(de)?;
        Ok(entries.into_iter().map(|(a, b, c)| ((a, b), c)).collect())
    }
}

impl CoocBackend {
    /// New exact backend.
    pub fn exact() -> Self {
        CoocBackend::Exact(FxHashMap::default())
    }

    /// New sketch backend with the given geometry.
    pub fn sketch(spec: SketchSpec) -> Self {
        CoocBackend::Sketch(CountMinSketch::with_byte_budget(
            spec.budget_bytes,
            spec.depth,
            spec.strategy,
            spec.seed,
        ))
    }

    /// Increments the count of the unordered pair `(a, b)`.
    pub fn add_pair(&mut self, a: PatternHash, b: PatternHash, count: u32) {
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        match self {
            CoocBackend::Exact(map) => {
                *map.entry((lo, hi)).or_insert(0) += count;
            }
            CoocBackend::Sketch(cms) => {
                cms.add(adt_sketch::hashing::pair_key(lo, hi), count);
            }
        }
    }

    /// Count estimate for the unordered pair `(a, b)`.
    ///
    /// Exact backends return the true count; sketch backends may
    /// overestimate (never underestimate).
    pub fn get(&self, a: PatternHash, b: PatternHash) -> u64 {
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        match self {
            CoocBackend::Exact(map) => map.get(&(lo, hi)).copied().unwrap_or(0) as u64,
            CoocBackend::Sketch(cms) => cms.estimate(adt_sketch::hashing::pair_key(lo, hi)),
        }
    }

    /// Memory footprint in bytes (exact: per-entry accounting; sketch:
    /// counter table).
    pub fn bytes(&self) -> usize {
        match self {
            CoocBackend::Exact(map) => map.len() * COOC_ENTRY_BYTES,
            CoocBackend::Sketch(cms) => cms.table_bytes(),
        }
    }

    /// Number of distinct stored pairs (exact only; `None` for sketches).
    pub fn exact_entries(&self) -> Option<usize> {
        match self {
            CoocBackend::Exact(map) => Some(map.len()),
            CoocBackend::Sketch(_) => None,
        }
    }

    /// Sorted `(lo, hi, count)` entries of an exact backend (`None` for
    /// sketches). Error-profile tooling replays these against a sketch
    /// built from the same corpus to measure real overestimates.
    pub fn exact_pair_entries(&self) -> Option<Vec<(u64, u64, u32)>> {
        match self {
            CoocBackend::Exact(map) => {
                let mut entries: Vec<(u64, u64, u32)> =
                    map.iter().map(|(&(lo, hi), &c)| (lo, hi, c)).collect();
                entries.sort_unstable();
                Some(entries)
            }
            CoocBackend::Sketch(_) => None,
        }
    }

    /// Converts an exact backend into a sketch of the given geometry by
    /// replaying all entries; no-op on an existing sketch.
    ///
    /// Entries are replayed in sorted key order, so the resulting sketch
    /// depends only on the map *contents* — never on hash-map iteration
    /// order. This matters for [`UpdateStrategy::Conservative`], whose
    /// updates are order-dependent: sorted replay makes sketch
    /// finalization reproducible across builds, thread counts, and merge
    /// schedules (each key's full mass arrives as one add, which also
    /// gives conservative updates their tightest estimates).
    pub fn to_sketch(&self, spec: SketchSpec) -> CoocBackend {
        match self {
            CoocBackend::Exact(map) => {
                let mut cms = CountMinSketch::with_byte_budget(
                    spec.budget_bytes,
                    spec.depth,
                    spec.strategy,
                    spec.seed,
                );
                let mut entries: Vec<(u64, u64, u32)> =
                    map.iter().map(|(&(lo, hi), &cnt)| (lo, hi, cnt)).collect();
                entries.sort_unstable();
                for (lo, hi, cnt) in entries {
                    cms.add(adt_sketch::hashing::pair_key(lo, hi), cnt);
                }
                CoocBackend::Sketch(cms)
            }
            CoocBackend::Sketch(cms) => CoocBackend::Sketch(cms.clone()),
        }
    }

    /// Merges another backend of the same kind into this one: exact maps
    /// merge by keyed addition (exact, order-independent), sketches by
    /// cell-wise addition (see [`CountMinSketch::merge_from`]). Mixed
    /// kinds are an error.
    pub fn merge_from(&mut self, other: &CoocBackend) -> Result<(), &'static str> {
        match (self, other) {
            (CoocBackend::Exact(into), CoocBackend::Exact(from)) => {
                for (&k, &v) in from.iter() {
                    *into.entry(k).or_insert(0) += v;
                }
                Ok(())
            }
            (CoocBackend::Sketch(into), CoocBackend::Sketch(from)) => into.merge_from(from),
            _ => Err("co-occurrence backend kind mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(x: u64) -> PatternHash {
        PatternHash(x)
    }

    #[test]
    fn exact_pair_counts_symmetric() {
        let mut c = CoocBackend::exact();
        c.add_pair(h(5), h(9), 2);
        c.add_pair(h(9), h(5), 3);
        assert_eq!(c.get(h(5), h(9)), 5);
        assert_eq!(c.get(h(9), h(5)), 5);
        assert_eq!(c.get(h(5), h(6)), 0);
        assert_eq!(c.exact_entries(), Some(1));
    }

    #[test]
    fn sketch_pair_counts_never_undercount() {
        let mut c = CoocBackend::sketch(SketchSpec {
            budget_bytes: 1 << 16,
            ..SketchSpec::default()
        });
        for i in 0..500u64 {
            c.add_pair(h(i), h(i + 1), 1);
        }
        for i in 0..500u64 {
            assert!(c.get(h(i), h(i + 1)) >= 1);
        }
        assert_eq!(c.exact_entries(), None);
    }

    #[test]
    fn exact_to_sketch_preserves_lower_bounds() {
        let mut exact = CoocBackend::exact();
        for i in 0..200u64 {
            exact.add_pair(h(i), h(i * 7 + 1), (i % 5 + 1) as u32);
        }
        let sk = exact.to_sketch(SketchSpec {
            budget_bytes: 1 << 18,
            ..SketchSpec::default()
        });
        for i in 0..200u64 {
            assert!(sk.get(h(i), h(i * 7 + 1)) >= exact.get(h(i), h(i * 7 + 1)));
        }
    }

    #[test]
    fn to_sketch_is_iteration_order_independent() {
        // Same entries inserted in opposite orders must produce identical
        // sketch tables (conservative updates are order-sensitive, so this
        // only holds because replay sorts).
        let spec = SketchSpec {
            budget_bytes: 1 << 10,
            ..SketchSpec::default()
        };
        let mut fwd = CoocBackend::exact();
        let mut rev = CoocBackend::exact();
        for i in 0..300u64 {
            fwd.add_pair(h(i), h(i * 3 + 1), (i % 4 + 1) as u32);
        }
        for i in (0..300u64).rev() {
            rev.add_pair(h(i), h(i * 3 + 1), (i % 4 + 1) as u32);
        }
        let (a, b) = (fwd.to_sketch(spec), rev.to_sketch(spec));
        match (a, b) {
            (CoocBackend::Sketch(sa), CoocBackend::Sketch(sb)) => {
                assert_eq!(sa.table(), sb.table());
                assert_eq!(sa.total(), sb.total());
            }
            _ => panic!("expected sketches"),
        }
    }

    #[test]
    fn merge_exact_backends_adds_counts() {
        let mut a = CoocBackend::exact();
        let mut b = CoocBackend::exact();
        a.add_pair(h(1), h(2), 2);
        a.add_pair(h(1), h(3), 1);
        b.add_pair(h(2), h(1), 5);
        b.add_pair(h(4), h(5), 7);
        a.merge_from(&b).unwrap();
        assert_eq!(a.get(h(1), h(2)), 7);
        assert_eq!(a.get(h(1), h(3)), 1);
        assert_eq!(a.get(h(4), h(5)), 7);
        assert_eq!(a.exact_entries(), Some(3));
    }

    #[test]
    fn merge_mixed_backends_is_error() {
        let mut a = CoocBackend::exact();
        let b = CoocBackend::sketch(SketchSpec::default());
        assert!(a.merge_from(&b).is_err());
        let mut c = CoocBackend::sketch(SketchSpec::default());
        assert!(c.merge_from(&CoocBackend::exact()).is_err());
    }

    #[test]
    fn bytes_accounting() {
        let mut exact = CoocBackend::exact();
        assert_eq!(exact.bytes(), 0);
        exact.add_pair(h(1), h(2), 1);
        exact.add_pair(h(1), h(3), 1);
        assert_eq!(exact.bytes(), 2 * COOC_ENTRY_BYTES);

        let sk = CoocBackend::sketch(SketchSpec {
            budget_bytes: 1 << 12,
            depth: 4,
            strategy: UpdateStrategy::Plain,
            seed: 1,
        });
        assert!(sk.bytes() <= 1 << 12);
    }
}
