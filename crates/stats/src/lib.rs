//! Pattern occurrence/co-occurrence statistics and NPMI scoring.
//!
//! Implements §2.1, §3.3 and §3.4 of the paper:
//!
//! * [`npmi`] — PMI / NPMI over column-level counts (Equations 1–2) with
//!   Jelinek–Mercer smoothing of rare co-occurrences (Equation 10);
//! * [`store`] — the occurrence dictionary plus exchangeable co-occurrence
//!   backends: an exact pair dictionary or a count-min sketch (§3.4);
//! * [`language_stats`] — per-generalization-language statistics built by
//!   scanning a corpus: `c(L(v))` = number of columns containing the
//!   pattern, `c(L(v1), L(v2))` = number of columns containing both;
//! * [`pipeline`] — the corpus-major sharded training pipeline: values
//!   are interned once, generalized under whole language batches in one
//!   traversal, and accumulated in thread-local shards that merge
//!   deterministically (bit-identical to the serial scan);
//! * [`streaming`] — the opt-in bounded-memory co-occurrence mode:
//!   shard workers stream pair counts into per-language count-min
//!   accumulators auto-sized from observed pattern distributions;
//! * [`build`] — batch construction entry points across candidate
//!   languages, built on the pipeline;
//! * [`fxhash`] — the vendored deterministic fast hasher keying the
//!   occurrence/co-occurrence dictionaries and memo tables;
//! * [`memo`] — the bounded per-worker pattern-pair score memo consumed
//!   by [`LanguageStats::npmi_matrix`], the batched scoring surface of
//!   the detection kernel.

pub mod build;
pub mod codec;
pub mod fxhash;
pub mod language_stats;
pub mod memo;
pub mod npmi;
pub mod pipeline;
pub mod profile;
pub mod store;
pub mod streaming;

#[cfg(any(test, feature = "reference-kernel"))]
pub use build::collect_stats_reference;
pub use build::{build_stats_for_languages, collect_stats_for_languages, for_each_language_stats};
pub use fxhash::{fx_hash_one, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use language_stats::{LanguageStats, NpmiMatrix, StatsConfig};
pub use memo::NpmiMemo;
pub use npmi::{npmi_from_counts, smoothed_cooccurrence, NpmiParams};
pub use pipeline::{effective_threads, PipelineOptions, PipelineReport, StatsError, TrainPipeline};
pub use profile::{column_profile, ColumnProfile, PatternBucket};
pub use store::{CoocBackend, SketchSpec};
pub use streaming::{pinned_width, sketch_table_bytes, CoocMode, StreamingOptions, StreamingPlan};
