//! Column pattern profiling.
//!
//! A Trifacta-style per-column pattern histogram (cf. the paper's
//! Appendix A discussion of commercial histogram features), used by the
//! examples and diagnostics: which patterns a column contains under a
//! language, with counts and representative values.

use crate::fxhash::FxHashMap;
use adt_corpus::Column;
use adt_patterns::{Language, Pattern};
use serde::Serialize;

/// One pattern bucket of a column profile.
#[derive(Debug, Clone, Serialize)]
pub struct PatternBucket {
    /// Rendered pattern, e.g. `\D[4]-\D[2]-\D[2]`.
    pub pattern: String,
    /// Number of cells with this pattern.
    pub count: usize,
    /// Up to three example values.
    pub examples: Vec<String>,
}

/// A column's pattern histogram under one language.
#[derive(Debug, Clone, Serialize)]
pub struct ColumnProfile {
    /// Language id the profile was computed under.
    pub language_id: String,
    /// Total non-empty cells.
    pub cells: usize,
    /// Buckets, most frequent first.
    pub buckets: Vec<PatternBucket>,
}

impl ColumnProfile {
    /// Fraction of cells covered by the single most frequent pattern.
    pub fn dominant_fraction(&self) -> f64 {
        match self.buckets.first() {
            Some(b) if self.cells > 0 => b.count as f64 / self.cells as f64,
            _ => 0.0,
        }
    }

    /// True when every cell shares one pattern.
    pub fn is_homogeneous(&self) -> bool {
        self.buckets.len() <= 1
    }
}

/// Computes a column's pattern histogram under `language`.
pub fn column_profile(column: &Column, language: &Language) -> ColumnProfile {
    let mut buckets: FxHashMap<String, PatternBucket> = FxHashMap::default();
    let mut cells = 0usize;
    for v in column.non_empty_values() {
        cells += 1;
        let key = Pattern::generalize(v, language).to_string();
        let b = buckets.entry(key.clone()).or_insert_with(|| PatternBucket {
            pattern: key,
            count: 0,
            examples: Vec::new(),
        });
        b.count += 1;
        if b.examples.len() < 3 && !b.examples.iter().any(|e| e == v) {
            b.examples.push(v.to_string());
        }
    }
    let mut buckets: Vec<PatternBucket> = buckets.into_values().collect();
    buckets.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then_with(|| a.pattern.cmp(&b.pattern))
    });
    ColumnProfile {
        language_id: language.id(),
        cells,
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_corpus::SourceTag;

    #[test]
    fn histogram_counts_and_examples() {
        let col = Column::from_strs(
            &["2011-01-01", "2012-02-02", "2013/03/03", ""],
            SourceTag::Local,
        );
        let p = column_profile(&col, &Language::paper_l1());
        assert_eq!(p.cells, 3);
        assert_eq!(p.buckets.len(), 2);
        assert_eq!(p.buckets[0].count, 2);
        assert!(p.buckets[0].pattern.contains('-'));
        assert_eq!(p.buckets[0].examples.len(), 2);
        assert!((p.dominant_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!(!p.is_homogeneous());
    }

    #[test]
    fn homogeneous_column() {
        let col = Column::from_strs(&["2011-01-01", "2012-02-02"], SourceTag::Local);
        let p = column_profile(&col, &Language::paper_l2());
        assert!(p.is_homogeneous());
        assert_eq!(p.dominant_fraction(), 1.0);
    }

    #[test]
    fn empty_column() {
        let col = Column::from_strs(&["", ""], SourceTag::Local);
        let p = column_profile(&col, &Language::paper_l2());
        assert_eq!(p.cells, 0);
        assert!(p.buckets.is_empty());
        assert_eq!(p.dominant_fraction(), 0.0);
    }
}
