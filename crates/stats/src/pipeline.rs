//! One-pass sharded training pipeline: corpus-parallel, value-interned
//! multi-language statistics construction.
//!
//! The per-language scan ([`LanguageStats::build`]) walks the whole corpus
//! once *per candidate language* — 144 full passes for the paper's
//! restricted space, each re-deduplicating every column and re-hashing
//! every value. This module inverts the loop to corpus-major order:
//!
//! 1. **Intern** (once per corpus): collect the distinct non-empty values
//!    corpus-wide and replace every column by a list of compact `u32`
//!    value ids. Columns are sharded across threads; shard dictionaries
//!    are merged serially into one global dictionary.
//! 2. **Generalize** (once per language batch): for a batch of `K`
//!    candidate languages, compute all `K` pattern hashes of every
//!    interned value in a single character traversal per value
//!    ([`MultiGeneralizer`]), filling an `n_values × K` hash matrix in
//!    parallel chunks. Work is proportional to *distinct* values, not
//!    value occurrences — corpora repeat values heavily, so this is the
//!    big algorithmic win over the per-column scan.
//! 3. **Accumulate** (once per language batch): shard columns across
//!    threads again; each worker owns thread-local exact
//!    [`LanguageStats`] accumulators for the batch and absorbs its
//!    columns through the same [`LanguageStats::absorb_column_hashes`]
//!    tail the serial scan uses. Worker accumulators merge by keyed
//!    addition ([`LanguageStats::merge_from`]) — exact and
//!    order-independent — and sketch-configured builds finalize by sorted
//!    replay afterwards, so the result is **bit-identical** to the serial
//!    per-language build at any thread count.
//!
//! Memory is bounded by `lang_batch`: the hash matrix and the per-worker
//! accumulators exist for one batch of languages at a time.
//!
//! The opt-in streaming mode ([`CoocMode::Streaming`]) additionally
//! bounds the *co-occurrence* footprint: workers accumulate straight
//! into per-language count-min sketches auto-sized from the observed
//! pattern distributions (see [`crate::streaming`]), never
//! materializing the exact pair table. Plain sketch updates are
//! commutative cell additions, so the thread-count byte-identity
//! guarantee is preserved.

use crate::fxhash::FxHashMap;
use crate::language_stats::{LanguageStats, StatsConfig};
use crate::streaming::{self, CoocMode, StreamingOptions, StreamingPlan};
use adt_corpus::Corpus;
use adt_patterns::{Language, MultiGeneralizer, PatternHash};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Tuning knobs for the sharded training pipeline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PipelineOptions {
    /// Worker threads for every parallel phase; `0` means all available
    /// cores. Results are identical at any setting.
    pub threads: usize,
    /// Languages generalized and accumulated per batch. Bounds peak
    /// memory (hash matrix and per-worker accumulators are batch-sized);
    /// results are independent of the batch size.
    pub lang_batch: usize,
    /// Co-occurrence accumulation mode. [`CoocMode::Deferred`] (the
    /// default) reproduces the historical exact-accumulate,
    /// compress-at-finalize behavior; [`CoocMode::Streaming`] bounds
    /// accumulator memory with per-shard count-min sketches (and ignores
    /// any [`StatsConfig::sketch`] — the accumulators already are the
    /// sketches). Results stay thread-count-independent in every mode.
    pub cooc: CoocMode,
    /// Sizing knobs for [`CoocMode::Streaming`]; ignored otherwise.
    pub streaming: StreamingOptions,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            threads: 0,
            lang_batch: 12,
            cooc: CoocMode::default(),
            streaming: StreamingOptions::default(),
        }
    }
}

/// Resolves a requested thread count: `0` means all available cores.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Observability counters for one pipeline run. Timing fields are
/// wall-clock diagnostics; every other field is a pure function of the
/// corpus, the language set, and the options.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Corpus columns scanned.
    pub columns: u64,
    /// Per-column distinct non-empty value entries (what the per-language
    /// scan would hash per language without a memo).
    pub value_occurrences: u64,
    /// Corpus-wide distinct non-empty values (what the pipeline actually
    /// generalizes per language).
    pub interned_values: u64,
    /// Candidate languages processed.
    pub languages: u64,
    /// Language batches run.
    pub batches: u64,
    /// Column shards per accumulate phase.
    pub shards: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Value generalizations performed (`interned_values × languages`).
    pub generalizations_performed: u64,
    /// Generalizations avoided versus a memo-less per-language scan
    /// (`(value_occurrences − interned_values) × languages`).
    pub generalizations_saved: u64,
    /// Wall-clock nanoseconds interning values.
    pub intern_nanos: u64,
    /// Wall-clock nanoseconds filling hash matrices.
    pub generalize_nanos: u64,
    /// Wall-clock nanoseconds absorbing columns into accumulators.
    pub accumulate_nanos: u64,
    /// Wall-clock nanoseconds merging shard accumulators and finalizing
    /// sketches.
    pub merge_nanos: u64,
    /// Languages accumulated through streaming sketch accumulators.
    pub streaming_languages: u64,
    /// Streaming sketch depth (rows); `0` when streaming never ran.
    pub sketch_depth: u64,
    /// Smallest auto-sized streaming width; `0` when streaming never ran.
    pub sketch_width_min: u64,
    /// Largest auto-sized streaming width.
    pub sketch_width_max: u64,
    /// Total counter-table bytes across all streaming-sized languages
    /// (one merged sketch per language).
    pub sketch_bytes: u64,
    /// Peak live co-occurrence accumulator bytes observed across
    /// batches: the sum over worker shards right before the merge, when
    /// every shard accumulator is alive at once. Tracked in every mode
    /// so exact and streaming builds compare directly; for exact
    /// backends the split across workers makes the value a diagnostic
    /// (like the timing fields), for streaming it is deterministic.
    pub peak_cooc_bytes: u64,
    /// Smallest fitted power-law exponent among streaming languages with
    /// a successful fit; `0` when none fitted.
    pub powerlaw_alpha_min: f64,
    /// Largest fitted power-law exponent among streaming languages.
    pub powerlaw_alpha_max: f64,
    /// Largest worst-case additive error bound `εN` over the merged
    /// streaming sketches.
    pub sketch_error_bound_max: f64,
}

/// Minimum over counters that use `0` as "unset".
fn nonzero_min(a: u64, b: u64) -> u64 {
    match (a, b) {
        (0, x) | (x, 0) => x,
        (x, y) => x.min(y),
    }
}

/// Same, for the fitted exponents.
fn nonzero_min_f64(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        b
    } else if b == 0.0 {
        a
    } else {
        a.min(b)
    }
}

impl PipelineReport {
    /// Folds another report's counters into this one (for combining the
    /// reports of successive pipeline runs, e.g. selection then final
    /// model assembly). Counts add saturating — a report must never wrap
    /// into nonsense on pathological inputs; `threads`, the peak, and
    /// the max-bounds take the maximum, the `_min` fields the smallest
    /// nonzero value (`0` means "never ran").
    pub fn absorb(&mut self, other: &PipelineReport) {
        self.columns = self.columns.saturating_add(other.columns);
        self.value_occurrences = self
            .value_occurrences
            .saturating_add(other.value_occurrences);
        self.interned_values = self.interned_values.saturating_add(other.interned_values);
        self.languages = self.languages.saturating_add(other.languages);
        self.batches = self.batches.saturating_add(other.batches);
        self.shards = self.shards.saturating_add(other.shards);
        self.threads = self.threads.max(other.threads);
        self.generalizations_performed = self
            .generalizations_performed
            .saturating_add(other.generalizations_performed);
        self.generalizations_saved = self
            .generalizations_saved
            .saturating_add(other.generalizations_saved);
        self.intern_nanos = self.intern_nanos.saturating_add(other.intern_nanos);
        self.generalize_nanos = self.generalize_nanos.saturating_add(other.generalize_nanos);
        self.accumulate_nanos = self.accumulate_nanos.saturating_add(other.accumulate_nanos);
        self.merge_nanos = self.merge_nanos.saturating_add(other.merge_nanos);
        self.streaming_languages = self
            .streaming_languages
            .saturating_add(other.streaming_languages);
        self.sketch_depth = self.sketch_depth.max(other.sketch_depth);
        self.sketch_width_min = nonzero_min(self.sketch_width_min, other.sketch_width_min);
        self.sketch_width_max = self.sketch_width_max.max(other.sketch_width_max);
        self.sketch_bytes = self.sketch_bytes.saturating_add(other.sketch_bytes);
        self.peak_cooc_bytes = self.peak_cooc_bytes.max(other.peak_cooc_bytes);
        self.powerlaw_alpha_min =
            nonzero_min_f64(self.powerlaw_alpha_min, other.powerlaw_alpha_min);
        self.powerlaw_alpha_max = self.powerlaw_alpha_max.max(other.powerlaw_alpha_max);
        self.sketch_error_bound_max = self
            .sketch_error_bound_max
            .max(other.sketch_error_bound_max);
    }
}

/// Errors from the parallel training pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// A worker thread panicked during the named phase; partial results
    /// were discarded.
    WorkerPanicked(&'static str),
    /// Merging shard accumulators broke an invariant (mismatched
    /// language or backend kind — a pipeline bug, not a data error).
    Merge(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::WorkerPanicked(phase) => {
                write!(f, "statistics worker panicked during {phase}")
            }
            StatsError::Merge(msg) => write!(f, "shard merge invariant broken: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

fn clock() -> Instant {
    Instant::now() // adt-allow(determinism): wall-clock feeds pipeline timing counters only, never statistics
}

/// Distinct-value dictionary of one column shard, with column value lists
/// rewritten to shard-local ids.
struct ShardIntern<'c> {
    vals: Vec<&'c str>,
    col_offsets: Vec<usize>,
    col_ids: Vec<u32>,
}

fn intern_shard<'c>(corpus: &'c Corpus, range: Range<usize>) -> ShardIntern<'c> {
    let mut map: FxHashMap<&'c str, u32> = FxHashMap::default();
    let mut vals: Vec<&'c str> = Vec::new();
    let mut col_offsets: Vec<usize> = Vec::with_capacity(range.len().saturating_add(1));
    col_offsets.push(0);
    let mut col_ids: Vec<u32> = Vec::new();
    let mut seen: Vec<u32> = Vec::new();
    for col in corpus.columns().get(range).into_iter().flatten() {
        seen.clear();
        for v in &col.values {
            if v.is_empty() {
                continue;
            }
            // adt-allow(unchecked-arithmetic): per-shard distinct-value count; a shard holding 4 G distinct strings would exhaust memory long before the id wraps
            let next = vals.len() as u32;
            let id = *map.entry(v.as_str()).or_insert_with(|| {
                vals.push(v.as_str());
                next
            });
            seen.push(id);
        }
        // Dedup by id (= by value); final per-column order is irrelevant
        // because `absorb_column_hashes` sorts pattern hashes anyway.
        seen.sort_unstable();
        seen.dedup();
        col_ids.extend_from_slice(&seen);
        col_offsets.push(col_ids.len());
    }
    ShardIntern {
        vals,
        col_offsets,
        col_ids,
    }
}

/// The corpus-major training pipeline: intern once, then run language
/// batches against the interned corpus. Construction performs the intern
/// pass; [`TrainPipeline::run`] (or [`TrainPipeline::run_batch`]) does
/// the per-language work.
pub struct TrainPipeline<'c> {
    corpus: &'c Corpus,
    threads: usize,
    lang_batch: usize,
    cooc: CoocMode,
    streaming: StreamingOptions,
    /// Corpus-wide distinct non-empty values.
    values: Vec<&'c str>,
    /// Per-column ranges into `col_ids` (`col_offsets[c]..col_offsets[c+1]`).
    col_offsets: Vec<usize>,
    /// Flattened per-column distinct value ids.
    col_ids: Vec<u32>,
    report: PipelineReport,
}

impl<'c> TrainPipeline<'c> {
    /// Interns the corpus (phase 1) and prepares the pipeline.
    pub fn new(corpus: &'c Corpus, opts: &PipelineOptions) -> Result<Self, StatsError> {
        let threads = effective_threads(opts.threads);
        let t0 = clock();
        let ranges = corpus.shard_ranges(threads);
        let shards: Vec<ShardIntern<'c>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let r = r.clone();
                    scope.spawn(move |_| intern_shard(corpus, r))
                })
                .collect();
            let mut out = Vec::with_capacity(handles.len());
            for h in handles {
                match h.join() {
                    Ok(s) => out.push(s),
                    Err(_) => return Err(StatsError::WorkerPanicked("intern")),
                }
            }
            Ok(out)
        })
        .map_err(|_| StatsError::WorkerPanicked("intern"))??;

        // Serial merge: shard dictionaries into one global dictionary,
        // remapping each shard's column id lists. Shards are contiguous
        // column ranges in order, so concatenation preserves column order.
        let mut map: FxHashMap<&'c str, u32> = FxHashMap::default();
        let mut values: Vec<&'c str> = Vec::new();
        let mut col_offsets: Vec<usize> = Vec::with_capacity(corpus.len().saturating_add(1));
        col_offsets.push(0);
        let mut col_ids: Vec<u32> = Vec::new();
        for shard in &shards {
            let mut remap: Vec<u32> = Vec::with_capacity(shard.vals.len());
            for &v in &shard.vals {
                // adt-allow(unchecked-arithmetic): corpus-wide distinct-value count; 4 G distinct strings would exhaust memory long before the id wraps
                let next = values.len() as u32;
                let gid = *map.entry(v).or_insert_with(|| {
                    values.push(v);
                    next
                });
                remap.push(gid);
            }
            for w in shard.col_offsets.windows(2) {
                for &lid in shard.col_ids.get(w[0]..w[1]).into_iter().flatten() {
                    col_ids.push(remap[lid as usize]);
                }
                col_offsets.push(col_ids.len());
            }
        }
        drop(map);

        let report = PipelineReport {
            columns: corpus.len() as u64,
            value_occurrences: col_ids.len() as u64,
            interned_values: values.len() as u64,
            threads: threads as u64,
            intern_nanos: t0.elapsed().as_nanos() as u64,
            ..PipelineReport::default()
        };
        Ok(TrainPipeline {
            corpus,
            threads,
            lang_batch: opts.lang_batch.max(1),
            cooc: opts.cooc,
            streaming: opts.streaming,
            values,
            col_offsets,
            col_ids,
            report,
        })
    }

    /// Counters accumulated so far.
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }

    /// Effective language batch size.
    pub fn lang_batch(&self) -> usize {
        self.lang_batch
    }

    /// Effective worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Corpus-wide distinct non-empty value count.
    pub fn interned_values(&self) -> usize {
        self.values.len()
    }

    /// Folds one batch's streaming plan into the report counters.
    fn record_plan(&mut self, plan: &StreamingPlan) {
        let r = &mut self.report;
        r.streaming_languages = r
            .streaming_languages
            .saturating_add(plan.widths.len() as u64);
        r.sketch_depth = r.sketch_depth.max(plan.depth as u64);
        for (&w, &a) in plan.widths.iter().zip(plan.alphas.iter()) {
            r.sketch_width_min = nonzero_min(r.sketch_width_min, w as u64);
            r.sketch_width_max = r.sketch_width_max.max(w as u64);
            r.sketch_bytes = r
                .sketch_bytes
                .saturating_add(streaming::sketch_table_bytes(w, plan.depth) as u64);
            if a > 0.0 {
                r.powerlaw_alpha_min = nonzero_min_f64(r.powerlaw_alpha_min, a);
                r.powerlaw_alpha_max = r.powerlaw_alpha_max.max(a);
            }
        }
    }

    /// Runs every language in `languages` through the pipeline in batches
    /// of [`TrainPipeline::lang_batch`], consuming each finished
    /// [`LanguageStats`] with `f(global_index, stats)` (indices into
    /// `languages`; consumption is parallel within a batch). Returns the
    /// results in input-language order.
    pub fn run<R, F>(
        &mut self,
        languages: &[Language],
        config: &StatsConfig,
        f: F,
    ) -> Result<Vec<R>, StatsError>
    where
        R: Send,
        F: Fn(usize, LanguageStats) -> R + Sync,
    {
        let mut out = Vec::with_capacity(languages.len());
        let batch_size = self.lang_batch;
        for (bi, batch) in languages.chunks(batch_size).enumerate() {
            out.extend(self.run_batch(bi * batch_size, batch, config, &f)?);
        }
        Ok(out)
    }

    /// Runs one batch of languages: fills the `n_values × K` hash matrix
    /// (phase 2), shards columns into thread-local accumulators (phase 3),
    /// merges deterministically, finalizes sketches, and consumes each
    /// result with `f(offset + batch_index, stats)`. Returns the results
    /// in batch order.
    pub fn run_batch<R, F>(
        &mut self,
        offset: usize,
        batch: &[Language],
        config: &StatsConfig,
        f: &F,
    ) -> Result<Vec<R>, StatsError>
    where
        R: Send,
        F: Fn(usize, LanguageStats) -> R + Sync,
    {
        let k = batch.len();
        if k == 0 {
            return Ok(Vec::new());
        }
        let n_values = self.values.len();

        // Phase 2: one character traversal per interned value emits the
        // pattern hash under every language in the batch.
        let t0 = clock();
        let generalizer = MultiGeneralizer::new(batch);
        let mut matrix: Vec<PatternHash> = vec![PatternHash(0); n_values * k];
        let chunk = n_values.div_ceil(self.threads).max(1);
        {
            let generalizer = &generalizer;
            crossbeam::thread::scope(|scope| {
                for (vals, out) in self.values.chunks(chunk).zip(matrix.chunks_mut(chunk * k)) {
                    scope.spawn(move |_| {
                        let mut hasher = generalizer.hasher();
                        for (v, row) in vals.iter().zip(out.chunks_mut(k)) {
                            row.copy_from_slice(hasher.hash_value(v));
                        }
                    });
                }
            })
            .map_err(|_| StatsError::WorkerPanicked("generalize"))?;
        }
        self.report.generalize_nanos += t0.elapsed().as_nanos() as u64;

        // Streaming only: fix per-language sketch geometry from the
        // deterministic interned layout before any worker spawns. Plans
        // depend only on the corpus, the language, and the options —
        // never on sharding — so streamed results stay byte-identical at
        // any thread count and batch size.
        let plan = match self.cooc {
            CoocMode::Streaming => Some(streaming::plan_batch(
                batch,
                &matrix,
                n_values,
                &self.col_offsets,
                &self.col_ids,
                config,
                &self.streaming,
            )),
            CoocMode::Exact | CoocMode::Deferred => None,
        };
        if let Some(plan) = plan.as_ref() {
            self.record_plan(plan);
        }

        // Phase 3: shard columns over workers with thread-local exact
        // (or, streaming, sketch-backed) accumulators. Over-shard
        // relative to the thread count so uneven columns balance;
        // results are shard-count-independent.
        let t1 = clock();
        let exact_config = StatsConfig {
            sketch: None,
            ..*config
        };
        let ranges = self.corpus.shard_ranges(self.threads.saturating_mul(4));
        self.report.shards = self.report.shards.max(ranges.len() as u64);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Vec<LanguageStats>>>> =
            (0..self.threads).map(|_| Mutex::new(None)).collect();
        {
            let matrix = &matrix;
            let col_offsets = &self.col_offsets;
            let col_ids = &self.col_ids;
            let next = &next;
            let ranges = &ranges;
            let exact_config = &exact_config;
            let plan = plan.as_ref();
            crossbeam::thread::scope(|scope| {
                for slot in &slots {
                    scope.spawn(move |_| {
                        let mut acc: Vec<LanguageStats> = match plan {
                            Some(p) => batch
                                .iter()
                                .enumerate()
                                .map(|(j, l)| {
                                    let width = p.widths.get(j).copied().unwrap_or(1);
                                    streaming::accumulator(*l, width, p.depth, p.seed)
                                })
                                .collect(),
                            None => batch
                                .iter()
                                .map(|l| LanguageStats::empty(*l, exact_config))
                                .collect(),
                        };
                        let mut scratch: Vec<Vec<PatternHash>> = vec![Vec::new(); k];
                        loop {
                            let s = next.fetch_add(1, Ordering::Relaxed);
                            let Some(range) = ranges.get(s) else { break };
                            for c in range.clone() {
                                let bounds = col_offsets
                                    .get(c)
                                    .copied()
                                    .zip(col_offsets.get(c.saturating_add(1)).copied());
                                let Some((lo, hi)) = bounds else { continue };
                                for &id in col_ids.get(lo..hi).into_iter().flatten() {
                                    let base = id as usize * k;
                                    if let Some(row) = matrix.get(base..base + k) {
                                        for (hs, &h) in scratch.iter_mut().zip(row) {
                                            hs.push(h);
                                        }
                                    }
                                }
                                // Empty columns still count: absorb with an
                                // empty hash list, exactly like the serial
                                // scan.
                                for (stats, hs) in acc.iter_mut().zip(scratch.iter_mut()) {
                                    stats.absorb_column_hashes(hs, exact_config);
                                }
                            }
                        }
                        *slot.lock() = Some(acc);
                    });
                }
            })
            .map_err(|_| StatsError::WorkerPanicked("accumulate"))?;
        }
        self.report.accumulate_nanos += t1.elapsed().as_nanos() as u64;

        // Every shard accumulator is alive at this instant, and the
        // merge below only ever consumes shards, so this sum is the
        // batch's peak live co-occurrence footprint.
        let live: u64 = slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .as_ref()
                    .map(|acc| acc.iter().map(|s| s.cooc_bytes() as u64).sum::<u64>())
                    .unwrap_or(0)
            })
            .sum();
        self.report.peak_cooc_bytes = self.report.peak_cooc_bytes.max(live);

        // Deterministic merge: keyed addition (exact) and cell-wise
        // addition (streaming sketches) are order-independent, and
        // deferred sketch finalization replays sorted keys, so the
        // merged result is bit-identical to a serial scan at any thread
        // count.
        let t2 = clock();
        let shards: Vec<Vec<LanguageStats>> = slots
            .into_iter()
            .filter_map(|slot| slot.into_inner())
            .collect();
        let mut merged = merge_shard_accumulators(shards)?;
        match self.cooc {
            CoocMode::Streaming => {
                // The accumulators already are the sketches — any
                // `config.sketch` is ignored in this mode. Record the
                // worst-case `εN` the merged geometry implies.
                for stats in merged.iter() {
                    if let Some(cms) = stats.cooc_sketch() {
                        self.report.sketch_error_bound_max =
                            self.report.sketch_error_bound_max.max(cms.error_bound());
                    }
                }
            }
            CoocMode::Exact | CoocMode::Deferred => {
                if let Some(spec) = config.sketch {
                    for stats in merged.iter_mut() {
                        stats.compress_cooccurrence(spec);
                    }
                }
            }
        }
        self.report.merge_nanos += t2.elapsed().as_nanos() as u64;

        self.report.batches += 1;
        self.report.languages += k as u64;
        self.report.generalizations_performed += n_values as u64 * k as u64;
        self.report.generalizations_saved +=
            (self.col_ids.len() as u64).saturating_sub(n_values as u64) * k as u64;

        // Consume in parallel: `f` typically scores a training set against
        // the statistics, which costs more than the merge itself.
        let inputs: Vec<Mutex<Option<(usize, LanguageStats)>>> = merged
            .into_iter()
            .enumerate()
            .map(|(i, s)| Mutex::new(Some((offset + i, s))))
            .collect();
        let out_slots: Vec<Mutex<Option<R>>> = (0..k).map(|_| Mutex::new(None)).collect();
        let consume_next = AtomicUsize::new(0);
        {
            let inputs = &inputs;
            let out_slots = &out_slots;
            let consume_next = &consume_next;
            crossbeam::thread::scope(|scope| {
                for _ in 0..self.threads.min(k) {
                    scope.spawn(move |_| loop {
                        let i = consume_next.fetch_add(1, Ordering::Relaxed);
                        let Some(input) = inputs.get(i) else { break };
                        let Some((gi, stats)) = input.lock().take() else {
                            continue;
                        };
                        let r = f(gi, stats);
                        if let Some(slot) = out_slots.get(i) {
                            *slot.lock() = Some(r);
                        }
                    });
                }
            })
            .map_err(|_| StatsError::WorkerPanicked("consume"))?;
        }
        let mut out = Vec::with_capacity(k);
        for slot in out_slots {
            out.push(
                slot.into_inner()
                    .ok_or(StatsError::WorkerPanicked("consume"))?,
            );
        }
        Ok(out)
    }
}

/// Merges per-shard accumulator vectors in slot order: exact backends by
/// keyed addition, sketch backends cell-wise — both order-independent,
/// so the result matches a single sequential scan. Mismatched shard
/// accumulators (different language, backend kind, or sketch geometry /
/// strategy / hash family) surface as [`StatsError::Merge`]; an empty
/// shard set means every worker died before publishing its slot.
pub(crate) fn merge_shard_accumulators(
    shards: Vec<Vec<LanguageStats>>,
) -> Result<Vec<LanguageStats>, StatsError> {
    let mut shards = shards.into_iter();
    let Some(mut base) = shards.next() else {
        return Err(StatsError::WorkerPanicked("accumulate"));
    };
    for acc in shards {
        for (dst, src) in base.iter_mut().zip(acc.iter()) {
            dst.merge_from(src).map_err(StatsError::Merge)?;
        }
    }
    Ok(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::collect_stats_reference;
    use crate::store::SketchSpec;
    use adt_corpus::{Column, SourceTag};
    use adt_patterns::{enumerate_coarse_languages, enumerate_restricted_languages};

    fn stats_bytes(s: &LanguageStats) -> Vec<u8> {
        let mut buf = Vec::new();
        s.write_binary(&mut buf).expect("in-memory write");
        buf
    }

    /// Pipeline output at several thread counts and batch sizes must be
    /// byte-identical (via the canonical sorted binary codec) to the
    /// serial per-language build.
    fn assert_differential(corpus: &Corpus, languages: &[Language], config: &StatsConfig) {
        let reference = collect_stats_reference(languages, corpus, config, 1).unwrap();
        let expect: Vec<Vec<u8>> = reference.iter().map(stats_bytes).collect();
        for threads in [1, 2, 4, 8] {
            for lang_batch in [1, 3, 64] {
                let opts = PipelineOptions {
                    threads,
                    lang_batch,
                    ..PipelineOptions::default()
                };
                let mut pipe = TrainPipeline::new(corpus, &opts).unwrap();
                let got = pipe.run(languages, config, |_, s| s).unwrap();
                assert_eq!(got.len(), languages.len());
                for ((lang, e), g) in languages.iter().zip(&expect).zip(&got) {
                    assert_eq!(g.language, *lang);
                    assert_eq!(
                        *e,
                        stats_bytes(g),
                        "diverged for {lang:?} (threads={threads}, lang_batch={lang_batch})"
                    );
                }
            }
        }
    }

    fn mixed_corpus() -> Corpus {
        let mut cols: Vec<Column> = Vec::new();
        for i in 0..40 {
            cols.push(Column::from_strs(
                &[&format!("{i}"), &format!("{i},000"), "x", ""],
                SourceTag::Web,
            ));
            cols.push(Column::from_strs(
                &[
                    &format!("{}-01-0{}", 1980 + i, i % 9 + 1),
                    &format!("{}/02/11", 1990 + i),
                    "café",
                    "naïve-Straße",
                ],
                SourceTag::PubXls,
            ));
        }
        // Duplicate-heavy columns exercise interning; an all-empty and a
        // zero-length column exercise the empty-absorb path.
        cols.push(Column::from_strs(&["x", "x", "x"], SourceTag::Web));
        cols.push(Column::from_strs(&["", "", ""], SourceTag::Web));
        cols.push(Column::from_strs(&[], SourceTag::Web));
        Corpus::from_columns(cols)
    }

    #[test]
    fn exact_backend_differential() {
        assert_differential(
            &mixed_corpus(),
            &enumerate_coarse_languages(),
            &StatsConfig::default(),
        );
    }

    #[test]
    fn sketch_backend_differential() {
        // Conservative count-min is update-order-dependent; identity at
        // every thread count only holds because both builds accumulate
        // exactly and finalize by sorted replay.
        assert_differential(
            &mixed_corpus(),
            &enumerate_coarse_languages(),
            &StatsConfig {
                max_distinct_per_column: 24,
                sketch: Some(SketchSpec {
                    budget_bytes: 1 << 12,
                    ..SketchSpec::default()
                }),
            },
        );
    }

    #[test]
    fn stride_subsample_differential() {
        // Columns far over the distinct cap hit the strided subsample.
        let cols: Vec<Column> = (0..8)
            .map(|c| {
                let values: Vec<String> = (0..100)
                    .map(|i| format!("w{}-{}", c, "y".repeat(i % 17 + 1)))
                    .collect();
                Column::new(values, SourceTag::Web)
            })
            .collect();
        assert_differential(
            &Corpus::from_columns(cols),
            &enumerate_coarse_languages(),
            &StatsConfig {
                max_distinct_per_column: 6,
                sketch: None,
            },
        );
    }

    #[test]
    fn empty_corpus_differential() {
        assert_differential(
            &Corpus::new(),
            &enumerate_coarse_languages(),
            &StatsConfig::default(),
        );
    }

    /// Values chosen to stress the SWAR classifier underneath the whole
    /// pipeline: multibyte UTF-8 in every width, ASCII boundary bytes
    /// (0x00, 0x7F), empty values, and runs crossing 8-byte words — all
    /// must stay byte-identical to the serial reference at 1/2/4/8
    /// threads.
    #[test]
    fn utf8_heavy_corpus_differential() {
        let mut cols: Vec<Column> = Vec::new();
        for i in 0..24usize {
            cols.push(Column::from_strs(
                &[
                    &format!("日本語-{i:02}"),
                    &format!("café{}", "é".repeat(i % 5)),
                    &format!("naïve-Straße-{i}"),
                    &format!("😀{}😀", "x".repeat(i)),
                    "\u{0}\u{7f}\u{0}",
                    "",
                ],
                SourceTag::Web,
            ));
            cols.push(Column::from_strs(
                &[
                    &format!("{}{}", "A".repeat(i % 11), "7".repeat(17 - i % 11)),
                    &"-".repeat(i + 1),
                    "é日é",
                ],
                SourceTag::PubXls,
            ));
        }
        assert_differential(
            &Corpus::from_columns(cols),
            &enumerate_coarse_languages(),
            &StatsConfig::default(),
        );
    }

    /// Pins the stats-facing fast hash (`pattern_of`, i.e.
    /// `Pattern::hash_value`) to the scalar per-character reference so a
    /// classifier bug shared by both pipeline builds can't self-agree.
    #[test]
    fn pattern_of_matches_scalar_reference() {
        use adt_patterns::Pattern;
        let values = [
            "",
            "2011-01-01",
            "café",
            "naïve-Straße",
            "日本語123",
            "😀😀😀",
            "\u{0}\u{7f}",
            "AAAAAAAAAAAAAAAA7",
        ];
        for lang in enumerate_restricted_languages() {
            let stats = LanguageStats::empty(lang, &StatsConfig::default());
            for v in values {
                assert_eq!(
                    stats.pattern_of(v),
                    Pattern::generalize_reference(v, &lang).hash64(),
                    "value {v:?} under {}",
                    lang.id()
                );
            }
        }
    }

    #[test]
    fn full_restricted_space_small_corpus_differential() {
        let cols: Vec<Column> = (0..12)
            .map(|i| {
                Column::from_strs(
                    &[&format!("{}", 1900 + i), &format!("AbC{i}"), "#x?"],
                    SourceTag::Web,
                )
            })
            .collect();
        assert_differential(
            &Corpus::from_columns(cols),
            &enumerate_restricted_languages(),
            &StatsConfig::default(),
        );
    }

    #[test]
    fn report_counts_interning_wins() {
        let corpus = mixed_corpus();
        let langs = enumerate_coarse_languages();
        let opts = PipelineOptions {
            threads: 2,
            lang_batch: 4,
            ..PipelineOptions::default()
        };
        let mut pipe = TrainPipeline::new(&corpus, &opts).unwrap();
        let _ = pipe
            .run(&langs, &StatsConfig::default(), |_, s| s.n_columns)
            .unwrap();
        let r = pipe.report();
        assert_eq!(r.columns, corpus.len() as u64);
        assert_eq!(r.languages, langs.len() as u64);
        assert_eq!(r.batches, langs.len().div_ceil(4) as u64);
        assert!(r.interned_values > 0);
        assert!(
            r.interned_values < r.value_occurrences,
            "duplicate-heavy corpus must intern fewer values than occurrences"
        );
        assert_eq!(r.generalizations_performed, r.interned_values * r.languages);
        assert_eq!(
            r.generalizations_saved,
            (r.value_occurrences - r.interned_values) * r.languages
        );
        assert_eq!(r.threads, 2);
    }

    #[test]
    fn report_absorb_adds_counts() {
        let mut a = PipelineReport {
            columns: 10,
            languages: 4,
            threads: 2,
            ..PipelineReport::default()
        };
        let b = PipelineReport {
            columns: 5,
            languages: 140,
            threads: 8,
            ..PipelineReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.columns, 15);
        assert_eq!(a.languages, 144);
        assert_eq!(a.threads, 8);
    }

    /// Streaming accumulation must be byte-identical at any thread count
    /// and batch size (plain sketch updates commute), keep the exact
    /// occurrence side untouched, and keep the measured sketch error
    /// within the worst-case bound its auto-sized geometry reports.
    #[test]
    fn streaming_differential_and_error_profile() {
        let corpus = mixed_corpus();
        let langs = enumerate_coarse_languages();
        let config = StatsConfig::default();
        let exact = collect_stats_reference(&langs, &corpus, &config, 2).unwrap();
        let mut reference: Option<Vec<Vec<u8>>> = None;
        for threads in [1, 2, 4, 8] {
            for lang_batch in [3, 64] {
                let opts = PipelineOptions {
                    threads,
                    lang_batch,
                    cooc: CoocMode::Streaming,
                    ..PipelineOptions::default()
                };
                let mut pipe = TrainPipeline::new(&corpus, &opts).unwrap();
                let got = pipe.run(&langs, &config, |_, s| s).unwrap();
                let bytes: Vec<Vec<u8>> = got.iter().map(stats_bytes).collect();
                if let Some(r) = reference.as_ref() {
                    assert_eq!(
                        *r, bytes,
                        "streaming diverged at threads={threads} lang_batch={lang_batch}"
                    );
                    continue;
                }
                // First build: validate against the exact reference.
                let report = *pipe.report();
                assert_eq!(report.streaming_languages, langs.len() as u64);
                assert!(report.sketch_width_min >= 1);
                assert!(report.sketch_width_max >= report.sketch_width_min);
                assert!(report.sketch_depth >= 1);
                assert!(report.sketch_bytes > 0);
                assert!(report.peak_cooc_bytes > 0);
                for (s, e) in got.iter().zip(&exact) {
                    assert_eq!(s.language, e.language);
                    assert_eq!(s.n_columns, e.n_columns);
                    assert_eq!(s.distinct_patterns(), e.distinct_patterns());
                    let cms = s.cooc_sketch().expect("streaming backend is a sketch");
                    let pairs = e.exact_cooc_pairs().expect("reference backend is exact");
                    let keyed: Vec<(u64, u64)> = pairs
                        .iter()
                        .map(|&(lo, hi, n)| (adt_sketch::hashing::pair_key(lo, hi), n as u64))
                        .collect();
                    let prof = adt_sketch::error_profile(cms, &keyed);
                    // The (ε, δ) guarantee is per key: the additive
                    // error stays under εN with probability 1 − e⁻ᵈᵉᵖᵗʰ.
                    // Assert the aggregate form (same convention as the
                    // sketch crate's own bound test): the mean is within
                    // the bound and violating keys are rare.
                    let bound = prof.theoretical_bound.max(1.0);
                    assert!(
                        prof.mean_error <= bound,
                        "{:?}: mean_error {} beyond bound {bound}",
                        s.language,
                        prof.mean_error
                    );
                    let violations = keyed
                        .iter()
                        .filter(|&&(k, n)| (cms.estimate(k).saturating_sub(n)) as f64 > bound)
                        .count();
                    let allowed = (keyed.len() as f64 * 0.05).ceil() as usize;
                    assert!(
                        violations <= allowed.max(1),
                        "{:?}: {violations}/{} keys beyond bound {bound}",
                        s.language,
                        keyed.len()
                    );
                }
                reference = Some(bytes);
            }
        }
    }

    /// The streaming pipeline's report must reflect the plan: per-batch
    /// widths inside the configured clamp, peak bytes matching the
    /// bounded accumulators, an error bound from the merged sketches.
    #[test]
    fn streaming_report_records_geometry() {
        let corpus = mixed_corpus();
        let langs = enumerate_coarse_languages();
        let opts = PipelineOptions {
            threads: 2,
            cooc: CoocMode::Streaming,
            ..PipelineOptions::default()
        };
        let mut pipe = TrainPipeline::new(&corpus, &opts).unwrap();
        let _ = pipe.run(&langs, &StatsConfig::default(), |_, s| s).unwrap();
        let r = pipe.report();
        assert_eq!(r.streaming_languages, langs.len() as u64);
        assert!(r.sketch_width_min >= opts.streaming.min_width as u64);
        assert!(r.sketch_width_max <= opts.streaming.max_width as u64);
        assert_eq!(r.sketch_depth, opts.streaming.depth as u64);
        assert!(r.sketch_error_bound_max > 0.0);
        // Peak: 2 worker slots × per-batch accumulators, each bounded by
        // the largest planned table.
        let per_table = crate::streaming::sketch_table_bytes(
            r.sketch_width_max as usize,
            r.sketch_depth as usize,
        ) as u64;
        assert!(r.peak_cooc_bytes <= 2 * pipe.lang_batch() as u64 * per_table);
    }

    /// Mismatched shard accumulators surface through the pipeline's
    /// merge seam as typed [`StatsError::Merge`] values, preserving the
    /// detail string from `CountMinSketch::merge_from` /
    /// `CoocBackend::merge_from` / `LanguageStats::merge_from`.
    #[test]
    fn shard_merge_mismatches_surface_as_typed_errors() {
        use crate::streaming::accumulator as stream_acc;
        use adt_sketch::UpdateStrategy;
        let l1 = Language::paper_l1();
        let l2 = Language::paper_l2();
        let exact = |l| LanguageStats::empty(l, &StatsConfig::default());

        // Empty shard set: every worker died before publishing.
        assert_eq!(
            merge_shard_accumulators(Vec::new()).unwrap_err(),
            StatsError::WorkerPanicked("accumulate")
        );

        // Language mismatch between aligned shard slots.
        let err = merge_shard_accumulators(vec![vec![exact(l1)], vec![exact(l2)]]).unwrap_err();
        assert_eq!(err, StatsError::Merge("language mismatch"));

        // Mixed backend kinds (exact vs sketch) in the same slot.
        let err = merge_shard_accumulators(vec![vec![exact(l1)], vec![stream_acc(l1, 64, 4, 7)]])
            .unwrap_err();
        assert_eq!(
            err,
            StatsError::Merge("co-occurrence backend kind mismatch")
        );

        // Geometry, hash-family, and strategy mismatches propagate up
        // from the sketch layer.
        let err = merge_shard_accumulators(vec![
            vec![stream_acc(l1, 64, 4, 7)],
            vec![stream_acc(l1, 32, 4, 7)],
        ])
        .unwrap_err();
        assert_eq!(err, StatsError::Merge("sketch geometry mismatch"));

        let err = merge_shard_accumulators(vec![
            vec![stream_acc(l1, 64, 4, 7)],
            vec![stream_acc(l1, 64, 4, 8)],
        ])
        .unwrap_err();
        assert_eq!(err, StatsError::Merge("sketch hash family mismatch"));

        let conservative = LanguageStats::empty(
            l1,
            &StatsConfig {
                sketch: Some(SketchSpec {
                    budget_bytes: 64 * 4 * 4, // same 64 × 4 geometry
                    depth: 4,
                    strategy: UpdateStrategy::Conservative,
                    seed: 7,
                }),
                ..StatsConfig::default()
            },
        );
        let err =
            merge_shard_accumulators(vec![vec![stream_acc(l1, 64, 4, 7)], vec![conservative]])
                .unwrap_err();
        assert_eq!(err, StatsError::Merge("sketch strategy mismatch"));
        assert!(err.to_string().contains("sketch strategy mismatch"));
    }

    #[test]
    fn report_absorb_saturates_and_merges_streaming_fields() {
        let mut a = PipelineReport {
            columns: u64::MAX - 1,
            sketch_width_max: 128,
            sketch_depth: 4,
            peak_cooc_bytes: 10,
            powerlaw_alpha_max: 1.5,
            sketch_error_bound_max: 3.0,
            ..PipelineReport::default()
        };
        let b = PipelineReport {
            columns: 5,
            streaming_languages: 3,
            sketch_width_min: 64,
            sketch_width_max: 96,
            sketch_depth: 2,
            sketch_bytes: 1024,
            peak_cooc_bytes: 7,
            powerlaw_alpha_min: 2.0,
            powerlaw_alpha_max: 2.5,
            sketch_error_bound_max: 1.0,
            ..PipelineReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.columns, u64::MAX, "adds saturate instead of wrapping");
        assert_eq!(a.streaming_languages, 3);
        assert_eq!(a.sketch_width_min, 64, "zero means unset");
        assert_eq!(a.sketch_width_max, 128);
        assert_eq!(a.sketch_depth, 4);
        assert_eq!(a.sketch_bytes, 1024);
        assert_eq!(a.peak_cooc_bytes, 10, "peak takes the max");
        assert_eq!(a.powerlaw_alpha_min, 2.0);
        assert_eq!(a.powerlaw_alpha_max, 2.5);
        assert_eq!(a.sketch_error_bound_max, 3.0);
        let mut c = PipelineReport {
            sketch_width_min: 96,
            ..PipelineReport::default()
        };
        c.absorb(&PipelineReport {
            sketch_width_min: 64,
            ..PipelineReport::default()
        });
        assert_eq!(c.sketch_width_min, 64);
    }

    #[test]
    fn worker_panic_surfaces_as_error() {
        let corpus = mixed_corpus();
        let mut pipe = TrainPipeline::new(&corpus, &PipelineOptions::default()).unwrap();
        let langs = [Language::paper_l1(), Language::paper_l2()];
        let err = pipe
            .run(&langs, &StatsConfig::default(), |i, _| {
                assert!(i < 10, "boom"); // never trips
                if i == 1 {
                    panic!("consume panic");
                }
                i
            })
            .unwrap_err();
        assert_eq!(err, StatsError::WorkerPanicked("consume"));
    }

    #[test]
    fn stats_error_displays() {
        let e = StatsError::WorkerPanicked("intern");
        assert!(e.to_string().contains("intern"));
        let m = StatsError::Merge("language mismatch");
        assert!(m.to_string().contains("language mismatch"));
    }
}
