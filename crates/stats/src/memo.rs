//! A bounded memo of pattern-pair NPMI scores.
//!
//! A long-lived scan worker sees the same pattern pairs over and over —
//! every wide integer column probes the same handful of numeric-pattern
//! pairs — so [`crate::LanguageStats::npmi_matrix`] can consult one of
//! these to skip recomputation (two `occ` probes, one `cooc` probe, and
//! the NPMI arithmetic per entry). The memo is per-language: pattern
//! hashes do not encode the language, and the same pair scores
//! differently under different statistics.
//!
//! **Bounded.** Long-running serve workers would otherwise grow the memo
//! without limit on adversarial all-distinct traffic. At `capacity`
//! entries the memo flushes wholesale (generational eviction): it is
//! deterministic, O(1) amortized, keeps the hot recent working set
//! rebuilding immediately, and never affects scores — only whether they
//! are recomputed.

use crate::fxhash::FxHashMap;
use adt_patterns::PatternHash;

/// Default entry cap per memo (≈16 bytes/entry → ~4 MiB at the cap).
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 18;

/// A capped `(pattern, pattern) → NPMI` memo with hit/miss counters.
#[derive(Debug, Clone)]
pub struct NpmiMemo {
    map: FxHashMap<(u64, u64), f64>,
    capacity: usize,
    hits: u64,
    misses: u64,
    flushes: u64,
}

impl Default for NpmiMemo {
    fn default() -> Self {
        NpmiMemo::with_capacity(DEFAULT_MEMO_CAPACITY)
    }
}

impl NpmiMemo {
    /// An empty memo with the default capacity.
    pub fn new() -> Self {
        NpmiMemo::default()
    }

    /// An empty memo holding at most `capacity` pair scores (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        NpmiMemo {
            map: FxHashMap::default(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Number of memoized pair scores.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime memo hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime memo misses (fresh score computations).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Wholesale evictions performed to stay under the cap.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Drops every memoized score (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    #[inline]
    fn key(a: PatternHash, b: PatternHash) -> (u64, u64) {
        if a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }

    /// The memoized score of an unordered pair, counting a hit.
    #[inline]
    pub fn lookup(&mut self, a: PatternHash, b: PatternHash) -> Option<f64> {
        let s = self.map.get(&Self::key(a, b)).copied();
        if s.is_some() {
            self.hits += 1;
        }
        s
    }

    /// Memoizes a freshly computed score, counting a miss. Flushes the
    /// whole memo first when inserting would exceed the cap.
    #[inline]
    pub fn insert(&mut self, a: PatternHash, b: PatternHash, score: f64) {
        self.misses += 1;
        if self.map.len() >= self.capacity {
            self.map.clear();
            self.flushes += 1;
        }
        self.map.insert(Self::key(a, b), score);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(x: u64) -> PatternHash {
        PatternHash(x)
    }

    #[test]
    fn lookup_is_symmetric() {
        let mut m = NpmiMemo::new();
        assert_eq!(m.lookup(h(1), h(2)), None);
        m.insert(h(2), h(1), -0.5);
        assert_eq!(m.lookup(h(1), h(2)), Some(-0.5));
        assert_eq!(m.lookup(h(2), h(1)), Some(-0.5));
        assert_eq!(m.hits(), 2);
        assert_eq!(m.misses(), 1);
    }

    #[test]
    fn stays_under_capacity_forever() {
        let mut m = NpmiMemo::with_capacity(64);
        for i in 0..10_000u64 {
            m.insert(h(i), h(i + 1), 0.0);
            assert!(m.len() <= 64, "len {} exceeds cap", m.len());
        }
        assert!(m.flushes() > 0);
        assert_eq!(m.misses(), 10_000);
    }

    #[test]
    fn flush_preserves_determinism_of_scores() {
        // Eviction may only cost recomputation, never change a score:
        // a re-inserted pair reads back what was inserted.
        let mut m = NpmiMemo::with_capacity(2);
        m.insert(h(1), h(2), 0.25);
        m.insert(h(3), h(4), 0.5);
        m.insert(h(5), h(6), 0.75); // triggers flush
        assert_eq!(m.lookup(h(1), h(2)), None);
        m.insert(h(1), h(2), 0.25);
        assert_eq!(m.lookup(h(1), h(2)), Some(0.25));
    }
}
