//! Streaming co-occurrence accumulation: bounded-memory sketch-backed
//! shard accumulators with per-language auto-sizing.
//!
//! The default pipeline accumulates **exact** pair dictionaries in every
//! shard and (when a sketch is configured) compresses only at finalize,
//! so peak memory is O(distinct pairs) regardless of the sketch budget —
//! fine for benchmark corpora, fatal for the paper's 350M-column web
//! regime. [`CoocMode::Streaming`] instead hands each shard worker
//! per-language [`CountMinSketch`] accumulators: pair counts stream
//! straight into the counter tables (the exact table is never
//! materialized) and shards merge cell-wise via
//! [`CountMinSketch::merge_from`], giving O(width × depth) memory per
//! language at any corpus size.
//!
//! Determinism: streaming sketches always use [`UpdateStrategy::Plain`].
//! Plain updates are commutative, associative cell additions (saturating
//! adds of non-negative counters), so the merged table is a pure
//! function of the multiset of inserted pairs — independent of the
//! work-stealing schedule — and the pipeline stays byte-identical at any
//! thread count. Conservative updates are order-dependent and only safe
//! in the deferred sorted-replay path.
//!
//! Auto-sizing (replacing the global `sketch_fraction` heuristic): per
//! language, the planner reads the distinct-pattern count off the
//! already-computed generalization matrix, bounds the insertable pair
//! mass from the per-column distinct-value layout, and fits the
//! power-law exponent `α` of pair counts on a deterministic strided
//! column sample ([`powerlaw_alpha`]). The width for a target `ε` is the
//! worst-case `⌈e/ε⌉` sharpened by the observed skew — heavy-tailed
//! count distributions concentrate mass on few keys, so `(e/ε)^(1/α)`
//! cells suffice in practice (§3.4's observation) — then clamped to
//! `[min_width, max_width]` and to the exact table's own footprint so a
//! streaming build never costs more memory than the table it replaces.
//! Every input to the plan is a pure function of the interned corpus,
//! the language, and the options, so plans (and therefore results) are
//! identical at any thread count or language batch size.

use crate::fxhash::FxHashMap;
use crate::language_stats::{LanguageStats, StatsConfig};
use crate::store::{CoocBackend, COOC_ENTRY_BYTES};
use adt_patterns::{Language, PatternHash};
use adt_sketch::{powerlaw_alpha, CountMinSketch, UpdateStrategy};
use serde::{Deserialize, Serialize};

/// How the pipeline accumulates co-occurrence counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum CoocMode {
    /// Exact pair dictionaries end to end; never compressed. Peak memory
    /// is O(distinct pairs).
    Exact,
    /// The historical default: accumulate exactly, compress into a
    /// count-min sketch at finalize (sorted replay) when the stats
    /// config carries a [`crate::SketchSpec`]. Peak memory still briefly
    /// reaches the exact size.
    #[default]
    Deferred,
    /// Shard workers accumulate straight into per-language count-min
    /// sketches sized by [`StreamingOptions`]; the exact pair table is
    /// never materialized. Peak memory is O(width × depth) per language
    /// per worker at any corpus size.
    Streaming,
}

/// Sizing knobs for [`CoocMode::Streaming`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamingOptions {
    /// Target additive-error fraction: estimates exceed true counts by
    /// at most `ε·N` (N = inserted pair mass) with probability `1−δ`,
    /// before power-law sharpening.
    pub epsilon: f64,
    /// Sketch rows; `δ = e^−depth`.
    pub depth: usize,
    /// Seed for the row-hash family.
    pub seed: u64,
    /// Lower clamp on auto-sized widths.
    pub min_width: usize,
    /// Upper clamp on auto-sized widths.
    pub max_width: usize,
    /// When set, skip auto-sizing and give every language exactly this
    /// width. The online learner pins geometry this way so incremental
    /// deltas stay cell-wise mergeable across retrains.
    pub fixed_width: Option<usize>,
}

impl Default for StreamingOptions {
    fn default() -> Self {
        StreamingOptions {
            epsilon: 1.0 / 1024.0,
            depth: 4,
            seed: 0xC0FFEE,
            min_width: 64,
            max_width: 1_048_576,
            fixed_width: None,
        }
    }
}

/// Per-batch sketch geometry chosen by [`plan_batch`]: one width/alpha
/// per batch language, shared depth and seed.
#[derive(Debug, Clone)]
pub struct StreamingPlan {
    /// Counter-row width per batch language.
    pub widths: Vec<usize>,
    /// Fitted power-law exponent per batch language (`0.0` when the
    /// sample was too small to fit; the width then uses the worst-case
    /// exponent `1`).
    pub alphas: Vec<f64>,
    /// Shared sketch depth.
    pub depth: usize,
    /// Shared hash-family seed.
    pub seed: u64,
}

/// Columns sampled (deterministic stride) for the power-law fit.
const MAX_SAMPLE_COLUMNS: usize = 128;

/// The geometry width implied by `opts` alone — no corpus inspection, no
/// power-law sharpening (worst-case `α = 1`). This is what the online
/// learner pins via [`StreamingOptions::fixed_width`]: every delta batch
/// must share one geometry for cell-wise merges across retrains.
pub fn pinned_width(opts: &StreamingOptions) -> usize {
    let eps = clamp_epsilon(opts.epsilon);
    clamp_width((std::f64::consts::E / eps).ceil(), opts)
}

/// Bytes of a `width × depth` u32 counter table.
pub fn sketch_table_bytes(width: usize, depth: usize) -> usize {
    width
        .saturating_mul(depth)
        .saturating_mul(std::mem::size_of::<u32>())
}

fn clamp_epsilon(epsilon: f64) -> f64 {
    if epsilon > 0.0 && epsilon < 1.0 {
        epsilon
    } else {
        StreamingOptions::default().epsilon
    }
}

fn clamp_width(raw: f64, opts: &StreamingOptions) -> usize {
    let lo = opts.min_width.max(1) as f64;
    let hi = (opts.max_width as f64).max(lo);
    raw.clamp(lo, hi) as usize
}

/// A fresh streaming shard accumulator: empty occurrence dictionary
/// (occurrences stay exact — they are linear in distinct patterns, not
/// quadratic) over a plain-update sketch of the planned geometry.
pub(crate) fn accumulator(
    language: Language,
    width: usize,
    depth: usize,
    seed: u64,
) -> LanguageStats {
    let cms = CountMinSketch::new(width.max(1), depth.max(1), UpdateStrategy::Plain, seed);
    LanguageStats::from_parts(language, 0, FxHashMap::default(), CoocBackend::Sketch(cms))
}

/// Chooses per-language sketch widths for one language batch.
///
/// `matrix` is the phase-2 generalization matrix (`n_values × k`
/// row-major, `k = batch.len()`); `col_offsets`/`col_ids` are the
/// interned per-column distinct-value layout. Everything read here is
/// already deterministic, so the plan — and with it the streamed result
/// — is independent of thread count and batch partitioning.
pub(crate) fn plan_batch(
    batch: &[Language],
    matrix: &[PatternHash],
    n_values: usize,
    col_offsets: &[usize],
    col_ids: &[u32],
    config: &StatsConfig,
    opts: &StreamingOptions,
) -> StreamingPlan {
    let k = batch.len();
    let depth = opts.depth.max(1);
    if let Some(w) = opts.fixed_width {
        return StreamingPlan {
            widths: vec![w.max(1); k],
            alphas: vec![0.0; k],
            depth,
            seed: opts.seed,
        };
    }
    // Upper bound on insertable pair mass, from column sizes alone: a
    // column with d distinct values contributes at most C(min(d, cap), 2)
    // pairs under any language (generalization only collapses values).
    let cap = config.max_distinct_per_column.max(2) as u64;
    let mut pair_mass = 0u64;
    for (&lo, &hi) in col_offsets.iter().zip(col_offsets.iter().skip(1)) {
        let d = (hi.saturating_sub(lo) as u64).min(cap);
        pair_mass = pair_mass.saturating_add(d.saturating_mul(d.saturating_sub(1)) / 2);
    }

    let samples = sample_pair_counts(batch, matrix, col_offsets, col_ids, config);
    let mut widths = Vec::with_capacity(k);
    let mut alphas = Vec::with_capacity(k);
    let mut column: Vec<PatternHash> = Vec::with_capacity(n_values);
    for j in 0..k {
        // Distinct patterns of language j: dedup its matrix column.
        column.clear();
        let mut cell = j;
        while let Some(&h) = matrix.get(cell) {
            column.push(h);
            cell = cell.saturating_add(k);
        }
        column.sort_unstable();
        column.dedup();
        let distinct = column.len() as u64;
        let alpha = samples
            .get(j)
            .and_then(|counts| powerlaw_alpha(counts, 2))
            .map(|a| a.clamp(1.0, 4.0));
        widths.push(auto_width(distinct, pair_mass, alpha, depth, opts));
        alphas.push(alpha.unwrap_or(0.0));
    }
    StreamingPlan {
        widths,
        alphas,
        depth,
        seed: opts.seed,
    }
}

/// Width for one language: worst-case `e/ε` sharpened by the fitted
/// exponent, clamped to the configured range and to the exact table's
/// own cell-equivalent footprint (a sketch wider than the exact
/// dictionary it replaces defeats the purpose).
fn auto_width(
    distinct: u64,
    pair_mass: u64,
    alpha: Option<f64>,
    depth: usize,
    opts: &StreamingOptions,
) -> usize {
    let eps = clamp_epsilon(opts.epsilon);
    let base = std::f64::consts::E / eps;
    let sharpened = base.powf(1.0 / alpha.unwrap_or(1.0).max(1.0));
    // Distinct pairs can't exceed C(distinct, 2) nor the corpus-level
    // pair mass; their exact dictionary would occupy `pairs × 24` bytes,
    // i.e. this many sketch cells:
    let pairs = distinct
        .saturating_mul(distinct.saturating_sub(1))
        .wrapping_div(2)
        .min(pair_mass)
        .max(1);
    let cells = depth.max(1).saturating_mul(std::mem::size_of::<u32>());
    let exact_equiv = pairs.saturating_mul(COOC_ENTRY_BYTES as u64) as f64 / cells.max(1) as f64;
    clamp_width(sharpened.min(exact_equiv).ceil(), opts)
}

/// Exact pair counts of a deterministic strided column sample, one count
/// vector per batch language — the observations the power-law fit runs
/// on. Reuses the real absorb tail so the sample distribution matches
/// what the accumulators will actually see (cap subsampling included).
fn sample_pair_counts(
    batch: &[Language],
    matrix: &[PatternHash],
    col_offsets: &[usize],
    col_ids: &[u32],
    config: &StatsConfig,
) -> Vec<Vec<u64>> {
    let k = batch.len();
    let exact = StatsConfig {
        sketch: None,
        ..*config
    };
    let mut accs: Vec<LanguageStats> = batch
        .iter()
        .map(|&l| LanguageStats::empty(l, &exact))
        .collect();
    let n_cols = col_offsets.len().saturating_sub(1);
    let stride = n_cols.div_ceil(MAX_SAMPLE_COLUMNS).max(1);
    let mut hashes: Vec<PatternHash> = Vec::new();
    let mut c = 0usize;
    while c < n_cols {
        let bounds = col_offsets
            .get(c)
            .copied()
            .zip(col_offsets.get(c.saturating_add(1)).copied());
        if let Some((lo, hi)) = bounds {
            for (j, acc) in accs.iter_mut().enumerate() {
                hashes.clear();
                for &id in col_ids.get(lo..hi).into_iter().flatten() {
                    let cell = (id as usize).saturating_mul(k).saturating_add(j);
                    if let Some(&h) = matrix.get(cell) {
                        hashes.push(h);
                    }
                }
                acc.absorb_column_hashes(&mut hashes, &exact);
            }
        }
        c = c.saturating_add(stride);
    }
    accs.iter()
        .map(|acc| match acc.exact_cooc_pairs() {
            Some(entries) => entries.iter().map(|&(_, _, n)| n as u64).collect(),
            None => Vec::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adt_patterns::enumerate_coarse_languages;

    #[test]
    fn pinned_width_is_clamped_worst_case() {
        let opts = StreamingOptions::default();
        let expect = (std::f64::consts::E * 1024.0).ceil() as usize;
        assert_eq!(pinned_width(&opts), expect);
        let tiny = StreamingOptions {
            epsilon: 0.9,
            ..opts
        };
        assert_eq!(pinned_width(&tiny), tiny.min_width);
        let huge = StreamingOptions {
            epsilon: 1e-12,
            ..opts
        };
        assert_eq!(pinned_width(&huge), huge.max_width);
        let invalid = StreamingOptions {
            epsilon: 0.0,
            ..opts
        };
        assert_eq!(pinned_width(&invalid), pinned_width(&opts));
    }

    #[test]
    fn table_bytes_saturate() {
        assert_eq!(sketch_table_bytes(8, 4), 128);
        assert_eq!(sketch_table_bytes(usize::MAX, 2), usize::MAX);
    }

    #[test]
    fn fixed_width_plan_skips_sizing() {
        let langs = enumerate_coarse_languages();
        let batch = &langs[..3];
        let plan = plan_batch(
            batch,
            &[],
            0,
            &[0],
            &[],
            &StatsConfig::default(),
            &StreamingOptions {
                fixed_width: Some(777),
                ..StreamingOptions::default()
            },
        );
        assert_eq!(plan.widths, vec![777, 777, 777]);
        assert_eq!(plan.alphas, vec![0.0, 0.0, 0.0]);
        assert_eq!(plan.depth, 4);
    }

    #[test]
    fn accumulator_is_plain_sketch_of_planned_geometry() {
        let acc = accumulator(adt_patterns::Language::leaf(), 96, 3, 42);
        let cms = acc.cooc_sketch().expect("sketch backend");
        assert_eq!(cms.width(), 96);
        assert_eq!(cms.depth(), 3);
        assert_eq!(cms.strategy(), UpdateStrategy::Plain);
        assert_eq!(acc.n_columns, 0);
        assert_eq!(acc.distinct_patterns(), 0);
    }

    #[test]
    fn auto_width_sharpens_with_alpha_and_caps_at_exact_footprint() {
        let opts = StreamingOptions::default();
        // Worst case (no fit) on a huge table: full e/eps width.
        let worst = auto_width(100_000, u64::MAX, None, 4, &opts);
        assert_eq!(worst, pinned_width(&opts));
        // A steep power law shrinks the width.
        let sharp = auto_width(100_000, u64::MAX, Some(2.0), 4, &opts);
        assert!(sharp < worst, "sharp {sharp} vs worst {worst}");
        assert!(sharp >= opts.min_width);
        // Few distinct patterns: never wider than the exact dictionary's
        // cell-equivalent footprint — C(10,2) = 45 pairs × 24B over
        // 4 × 4B cells per width unit → ⌈67.5⌉ = 68 cells.
        let small = auto_width(10, u64::MAX, None, 4, &opts);
        assert_eq!(small, 68);
        // And the min-width clamp catches the degenerate end.
        let degenerate = auto_width(2, u64::MAX, None, 4, &opts);
        assert_eq!(degenerate, opts.min_width);
    }

    #[test]
    fn plan_is_deterministic_and_batch_independent() {
        // Hand-built layout: 4 values, 2 columns each holding all 4.
        let langs = enumerate_coarse_languages();
        let batch = &langs[..2];
        let k = batch.len();
        let matrix: Vec<PatternHash> = (0..4usize)
            .flat_map(|v| (0..k).map(move |j| PatternHash((v as u64 + 1) * 31 + j as u64)))
            .collect();
        let col_offsets = [0usize, 4, 8];
        let col_ids = [0u32, 1, 2, 3, 0, 1, 2, 3];
        let config = StatsConfig::default();
        let opts = StreamingOptions::default();
        let a = plan_batch(batch, &matrix, 4, &col_offsets, &col_ids, &config, &opts);
        let b = plan_batch(batch, &matrix, 4, &col_offsets, &col_ids, &config, &opts);
        assert_eq!(a.widths, b.widths);
        assert_eq!(a.alphas, b.alphas);
        assert!(a.widths.iter().all(|&w| w >= opts.min_width));
    }
}
