//! PMI / NPMI computation (Equations 1–2) with Jelinek–Mercer smoothing
//! (Equation 10).

use serde::{Deserialize, Serialize};

/// Scoring parameters shared across NPMI evaluations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NpmiParams {
    /// Jelinek–Mercer smoothing factor `f ∈ [0, 1]` of Equation 10; the
    /// paper defaults to 0.1 and finds [0.1, 0.3] best (Figure 17(a)).
    pub smoothing: f64,
}

impl Default for NpmiParams {
    fn default() -> Self {
        NpmiParams { smoothing: 0.1 }
    }
}

/// Jelinek–Mercer smoothed co-occurrence count (Equation 10):
/// `ĉ₁₂ = (1−f)·c₁₂ + f·E[c₁₂]` with `E[c₁₂] = c₁·c₂ / N`.
pub fn smoothed_cooccurrence(c1: u64, c2: u64, c12: u64, n_columns: u64, f: f64) -> f64 {
    let expected = (c1 as f64) * (c2 as f64) / (n_columns.max(1) as f64);
    (1.0 - f) * c12 as f64 + f * expected
}

/// NPMI from raw column counts (Equations 1–2).
///
/// The paper's Example 1: with 100M columns, `c("2011") = 1M`,
/// `c("2012") = 2M` and 500K columns containing both, the pair is
/// strongly compatible:
///
/// ```
/// use adt_stats::{npmi_from_counts, NpmiParams};
/// let params = NpmiParams { smoothing: 0.0 };
/// let npmi = npmi_from_counts(1_000_000, 2_000_000, 500_000, 100_000_000, params);
/// assert!((npmi - 0.60).abs() < 0.02);
/// ```
///
/// Conventions fixed in DESIGN.md §3:
/// * `c1`/`c2` are floored at 1 so unseen patterns still score (an unseen
///   pattern co-occurring with nothing yields −1, the most suspicious);
/// * a smoothed co-occurrence of ~0 yields −1 (the `p₁₂ → 0` limit);
/// * co-occurrence is capped at `min(c1, c2)` (a pair cannot co-occur in
///   more columns than either member occurs in — count-min overestimates
///   would otherwise push NPMI above its true value);
/// * the result is clamped to `[-1, 1]`.
pub fn npmi_from_counts(c1: u64, c2: u64, c12: u64, n_columns: u64, params: NpmiParams) -> f64 {
    let n = n_columns.max(1) as f64;
    let c1 = c1.max(1);
    let c2 = c2.max(1);
    let c12 = c12.min(c1).min(c2);
    let c12_hat = smoothed_cooccurrence(c1, c2, c12, n_columns.max(1), params.smoothing)
        .min(c1.min(c2) as f64);
    if c12_hat <= 1e-12 {
        return -1.0;
    }
    let p1 = c1 as f64 / n;
    let p2 = c2 as f64 / n;
    let p12 = (c12_hat / n).min(1.0);
    let pmi = (p12 / (p1 * p2)).ln();
    let denom = -(p12.ln());
    if denom <= 1e-12 {
        // p12 == 1: the pair appears in every column; perfectly compatible.
        return if pmi >= 0.0 { 1.0 } else { -1.0 };
    }
    (pmi / denom).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_SMOOTH: NpmiParams = NpmiParams { smoothing: 0.0 };

    #[test]
    fn paper_example1_compatible_years() {
        // |C| = 100M, c(2011)=1M, c(2012)=2M, c(2011,2012)=500K → NPMI≈0.60.
        let v = npmi_from_counts(1_000_000, 2_000_000, 500_000, 100_000_000, NO_SMOOTH);
        assert!((v - 0.60).abs() < 0.02, "got {v}");
    }

    #[test]
    fn paper_example1_incompatible_pair() {
        // c(2011)=1M, c(January-01)=2M, c(pair)=10 → NPMI≈−0.47.
        let v = npmi_from_counts(1_000_000, 2_000_000, 10, 100_000_000, NO_SMOOTH);
        assert!((v - (-0.47)).abs() < 0.02, "got {v}");
    }

    #[test]
    fn independence_gives_zero() {
        // p12 = p1*p2 exactly → PMI = 0 → NPMI = 0.
        let v = npmi_from_counts(1000, 1000, 10, 100_000, NO_SMOOTH);
        assert!(v.abs() < 1e-9, "got {v}");
    }

    #[test]
    fn never_cooccurring_is_minus_one() {
        let v = npmi_from_counts(1000, 1000, 0, 100_000, NO_SMOOTH);
        assert_eq!(v, -1.0);
    }

    #[test]
    fn always_cooccurring_is_plus_one() {
        // Pair appears in every column both members appear in, and they
        // appear together always: c1=c2=c12.
        let v = npmi_from_counts(500, 500, 500, 100_000, NO_SMOOTH);
        assert!((v - 1.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn bounded_for_arbitrary_inputs() {
        for &(c1, c2, c12, n) in &[
            (0u64, 0u64, 0u64, 1u64),
            (1, 1, 1, 1),
            (10, 10, 100, 10), // c12 over-reported; must be capped
            (1_000_000, 1, 1, 1_000_000),
            (5, 7, 3, 1_000_000_000),
        ] {
            for f in [0.0, 0.1, 0.5, 1.0] {
                let v = npmi_from_counts(c1, c2, c12, n, NpmiParams { smoothing: f });
                assert!(
                    (-1.0..=1.0).contains(&v),
                    "out of range for {c1},{c2},{c12},{n},{f}: {v}"
                );
            }
        }
    }

    #[test]
    fn smoothing_pulls_zero_cooccurrence_up() {
        // With smoothing, a rare-but-never-seen pair of popular patterns is
        // still very negative; a never-seen pair of *rare* patterns is less
        // penalized (the paper's motivation: rare events fluctuate).
        let params = NpmiParams { smoothing: 0.1 };
        let rare = npmi_from_counts(2, 2, 0, 1_000_000, params);
        let popular = npmi_from_counts(100_000, 100_000, 0, 1_000_000, params);
        assert!(rare > -1.0);
        assert!(rare > popular, "rare {rare} vs popular {popular}");
    }

    #[test]
    fn smoothing_interpolates_toward_independence() {
        // f = 1 ignores the observed count entirely → NPMI = 0 (pure
        // independence expectation).
        let v = npmi_from_counts(1000, 1000, 999, 100_000, NpmiParams { smoothing: 1.0 });
        assert!(v.abs() < 1e-9, "got {v}");
    }

    #[test]
    fn smoothed_count_formula() {
        // (1-f)*c12 + f*c1*c2/N
        let s = smoothed_cooccurrence(100, 200, 50, 10_000, 0.1);
        assert!((s - (0.9 * 50.0 + 0.1 * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn unseen_patterns_floored() {
        // Both unseen: c1=c2=0 floored to 1, c12=0 → -1 without smoothing.
        let v = npmi_from_counts(0, 0, 0, 1000, NO_SMOOTH);
        assert_eq!(v, -1.0);
    }

    #[test]
    fn monotone_in_c12() {
        let mut prev = -2.0;
        for c12 in [0u64, 1, 5, 20, 100, 400] {
            let v = npmi_from_counts(1000, 500, c12, 1_000_000, NO_SMOOTH);
            assert!(v >= prev, "not monotone at c12={c12}");
            prev = v;
        }
    }
}
