//! Compact binary serialization for [`LanguageStats`].
//!
//! The shipped model's bulk is occurrence and co-occurrence dictionaries.
//! JSON stores each u64 hash as up-to-20 decimal digits; the binary codec
//! sorts keys and delta-encodes them as varints, typically 3–5× smaller
//! and an order of magnitude faster to load — which matters for the
//! paper's client-side deployment story.

use crate::fxhash::FxHashMap;
use crate::language_stats::LanguageStats;
use crate::store::CoocBackend;
use adt_patterns::{Language, Level};
use adt_sketch::codec::{read_varint, write_varint};
use adt_sketch::CountMinSketch;
use std::io::{self, Read, Write};

const STATS_MAGIC: &[u8; 4] = b"ADT1";

fn level_tag(l: Level) -> u8 {
    match l {
        Level::Leaf => 0,
        Level::Class => 1,
        Level::Super => 2,
        Level::Root => 3,
    }
}

fn tag_level(t: u8) -> io::Result<Level> {
    Ok(match t {
        0 => Level::Leaf,
        1 => Level::Class,
        2 => Level::Super,
        3 => Level::Root,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad level tag")),
    })
}

fn write_language<W: Write>(w: &mut W, l: &Language) -> io::Result<()> {
    w.write_all(&[
        level_tag(l.upper),
        level_tag(l.lower),
        level_tag(l.digit),
        level_tag(l.symbol),
    ])
}

fn read_language<R: Read>(r: &mut R) -> io::Result<Language> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Language::new(
        tag_level(b[0])?,
        tag_level(b[1])?,
        tag_level(b[2])?,
        tag_level(b[3])?,
    )
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Sorted + delta-encoded u64 key dictionary with u32 values.
fn write_u64_map<W: Write>(w: &mut W, map: &FxHashMap<u64, u32>) -> io::Result<()> {
    let mut entries: Vec<(u64, u32)> = map.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    write_varint(w, entries.len() as u64)?;
    let mut prev = 0u64;
    for (k, v) in entries {
        write_varint(w, k.wrapping_sub(prev))?;
        write_varint(w, v as u64)?;
        prev = k;
    }
    Ok(())
}

fn read_u64_map<R: Read>(r: &mut R) -> io::Result<FxHashMap<u64, u32>> {
    let n = read_varint(r)? as usize;
    if n > (1 << 28) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "map too large"));
    }
    let mut map = FxHashMap::with_capacity_and_hasher(n, Default::default());
    let mut prev = 0u64;
    for _ in 0..n {
        let k = prev.wrapping_add(read_varint(r)?);
        let v = read_varint(r)?;
        if v > u32::MAX as u64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "count overflow"));
        }
        map.insert(k, v as u32);
        prev = k;
    }
    Ok(map)
}

/// Sorted + delta-encoded pair dictionary (lexicographic on `(lo, hi)`).
fn write_pair_map<W: Write>(w: &mut W, map: &FxHashMap<(u64, u64), u32>) -> io::Result<()> {
    let mut entries: Vec<((u64, u64), u32)> = map.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    write_varint(w, entries.len() as u64)?;
    let mut prev_lo = 0u64;
    for ((lo, hi), v) in entries {
        write_varint(w, lo.wrapping_sub(prev_lo))?;
        // hi >= lo by construction; store the offset.
        write_varint(w, hi.wrapping_sub(lo))?;
        write_varint(w, v as u64)?;
        prev_lo = lo;
    }
    Ok(())
}

fn read_pair_map<R: Read>(r: &mut R) -> io::Result<FxHashMap<(u64, u64), u32>> {
    let n = read_varint(r)? as usize;
    if n > (1 << 28) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "map too large"));
    }
    let mut map = FxHashMap::with_capacity_and_hasher(n, Default::default());
    let mut prev_lo = 0u64;
    for _ in 0..n {
        let lo = prev_lo.wrapping_add(read_varint(r)?);
        let hi = lo.wrapping_add(read_varint(r)?);
        let v = read_varint(r)?;
        if v > u32::MAX as u64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "count overflow"));
        }
        map.insert((lo, hi), v as u32);
        prev_lo = lo;
    }
    Ok(map)
}

impl LanguageStats {
    /// Writes the statistics in the compact binary format.
    pub fn write_binary<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(STATS_MAGIC)?;
        write_language(w, &self.language)?;
        write_varint(w, self.n_columns)?;
        write_u64_map(w, self.occ_map())?;
        match self.cooc_backend() {
            CoocBackend::Exact(map) => {
                w.write_all(&[0u8])?;
                write_pair_map(w, map)?;
            }
            CoocBackend::Sketch(cms) => {
                w.write_all(&[1u8])?;
                cms.write_binary(w)?;
            }
        }
        Ok(())
    }

    /// Reads statistics written by [`LanguageStats::write_binary`].
    pub fn read_binary<R: Read>(r: &mut R) -> io::Result<LanguageStats> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != STATS_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad stats magic",
            ));
        }
        let language = read_language(r)?;
        let n_columns = read_varint(r)?;
        let occ = read_u64_map(r)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let cooc = match tag[0] {
            0 => CoocBackend::Exact(read_pair_map(r)?),
            1 => CoocBackend::Sketch(CountMinSketch::read_binary(r)?),
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad cooc tag")),
        };
        Ok(LanguageStats::from_parts(language, n_columns, occ, cooc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language_stats::StatsConfig;
    use crate::store::SketchSpec;
    use adt_corpus::{Column, Corpus, SourceTag};
    use adt_patterns::Language;

    fn sample_corpus() -> Corpus {
        Corpus::from_columns(
            (0..60)
                .map(|i| {
                    Column::from_strs(
                        &[
                            &format!("{}", 1900 + i),
                            &format!("{},{:03}", i + 1, i * 7 % 1000),
                            "x",
                        ],
                        SourceTag::Web,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn exact_roundtrip_preserves_scores() {
        let corpus = sample_corpus();
        let stats = LanguageStats::build(
            adt_patterns::crude::crude_language(),
            &corpus,
            &StatsConfig::default(),
        );
        let mut buf = Vec::new();
        stats.write_binary(&mut buf).unwrap();
        let back = LanguageStats::read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back.language, stats.language);
        assert_eq!(back.n_columns, stats.n_columns);
        assert_eq!(back.distinct_patterns(), stats.distinct_patterns());
        let params = crate::NpmiParams::default();
        for (u, v) in [("1955", "7,000"), ("1955", "zz"), ("x", "1999")] {
            assert_eq!(
                back.score_values(u, v, params),
                stats.score_values(u, v, params)
            );
        }
    }

    #[test]
    fn sketched_roundtrip_preserves_scores() {
        let corpus = sample_corpus();
        let mut stats =
            LanguageStats::build(Language::paper_l2(), &corpus, &StatsConfig::default());
        stats.compress_cooccurrence(SketchSpec {
            budget_bytes: 1 << 14,
            ..SketchSpec::default()
        });
        let mut buf = Vec::new();
        stats.write_binary(&mut buf).unwrap();
        let back = LanguageStats::read_binary(&mut buf.as_slice()).unwrap();
        let params = crate::NpmiParams::default();
        for (u, v) in [("1955", "7,000"), ("1955", "zz")] {
            assert_eq!(
                back.score_values(u, v, params),
                stats.score_values(u, v, params)
            );
        }
    }

    #[test]
    fn binary_much_smaller_than_json() {
        // The offline harness stubs serde_json with panicking bodies.
        let json_available =
            std::panic::catch_unwind(|| serde_json::to_string(&0u8).is_ok()).unwrap_or(false);
        if !json_available {
            eprintln!("skipping: JSON codec unavailable (stub serde_json)");
            return;
        }
        let corpus = sample_corpus();
        let stats = LanguageStats::build(Language::leaf(), &corpus, &StatsConfig::default());
        let mut bin = Vec::new();
        stats.write_binary(&mut bin).unwrap();
        let json = serde_json::to_vec(&stats).unwrap();
        assert!(
            bin.len() * 2 < json.len(),
            "bin {} vs json {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(LanguageStats::read_binary(&mut &b"NOPE"[..]).is_err());
    }
}
