//! LZSS tokenizer, encoder, and decoder.
//!
//! A greedy match finder over a sliding window with a hash-chain index —
//! the same construction DEFLATE uses. [`compress`]/[`decompress`] give a
//! verified round-trip byte format; [`tokenize`] +
//! [`token_stream_cost_bits`] provide the cost function used by the CDM
//! distance without materializing the encoded bytes.

const WINDOW: usize = 1 << 12;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: usize = 12;

/// One LZSS token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A raw byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Backward distance (1..=WINDOW).
        dist: u16,
        /// Match length (MIN_MATCH..=MAX_MATCH).
        len: u16,
    },
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(0x7F4B));
    (h as usize) & ((1 << HASH_BITS) - 1)
}

/// Greedy LZSS tokenization with hash-chain match finding.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 1);
    // head[h] = most recent position with hash h; prev[i] = previous
    // position in i's chain.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n];
    let mut i = 0;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < 32 {
                let max_len = (n - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l >= max_len {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                dist: best_dist as u16,
                len: best_len as u16,
            });
            // Index every position covered by the match.
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i;
            while j < end {
                let h = hash3(data, j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            if i + MIN_MATCH <= n {
                let h = hash3(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    tokens
}

/// Cost in bits of a token stream under an order-0 entropy model over
/// token symbols (literal bytes + length/distance buckets), plus per-token
/// flag bits — an idealized stand-in for DEFLATE's Huffman tables.
pub fn token_stream_cost_bits(tokens: &[Token]) -> f64 {
    if tokens.is_empty() {
        return 0.0;
    }
    // Symbol alphabet: 256 literals, then (length bucket, distance bucket).
    let mut counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for t in tokens {
        let sym = match t {
            Token::Literal(b) => *b as u32,
            Token::Match { dist, len } => {
                let lb = 32 - (*len as u32).leading_zeros();
                let db = 32 - (*dist as u32).leading_zeros();
                256 + lb * 32 + db
            }
        };
        *counts.entry(sym).or_default() += 1;
    }
    let total: u32 = counts.values().sum();
    let mut bits = 0.0;
    for t in tokens {
        let sym = match t {
            Token::Literal(b) => *b as u32,
            Token::Match { dist, len } => {
                let lb = 32 - (*len as u32).leading_zeros();
                let db = 32 - (*dist as u32).leading_zeros();
                256 + lb * 32 + db
            }
        };
        let p = counts[&sym] as f64 / total as f64;
        bits += 1.0 - p.log2(); // 1 flag bit + entropy of symbol
        if let Token::Match { dist, len } = t {
            // Extra bits for the exact value within each bucket.
            bits += ((*len as f64).log2() + (*dist as f64).log2()).max(0.0) * 0.5;
        }
    }
    bits
}

/// Encodes `data` to a self-delimiting byte stream.
///
/// Format: per token, a tag byte `0` + literal, or tag `1` + u16 dist +
/// u16 len (little-endian). Not size-optimal — the cost model above is the
/// metric — but enables a round-trip correctness check of the tokenizer.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let tokens = tokenize(data);
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    for t in tokens {
        match t {
            Token::Literal(b) => {
                out.push(0);
                out.push(b);
            }
            Token::Match { dist, len } => {
                out.push(1);
                out.extend_from_slice(&dist.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
    }
    out
}

/// Decodes a stream produced by [`compress`].
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < stream.len() {
        match stream[i] {
            0 => {
                let b = *stream.get(i + 1).ok_or("truncated literal")?;
                out.push(b);
                i += 2;
            }
            1 => {
                if i + 5 > stream.len() {
                    return Err("truncated match".into());
                }
                let dist = u16::from_le_bytes([stream[i + 1], stream[i + 2]]) as usize;
                let len = u16::from_le_bytes([stream[i + 3], stream[i + 4]]) as usize;
                if dist == 0 || dist > out.len() {
                    return Err(format!("bad distance {dist} at output len {}", out.len()));
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
                i += 5;
            }
            tag => return Err(format!("bad tag {tag}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let enc = compress(data);
        let dec = decompress(&enc).expect("decode");
        assert_eq!(dec, data);
    }

    #[test]
    fn roundtrip_basic() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcabcabcabcabc");
        roundtrip(b"the quick brown fox jumps over the lazy dog");
        roundtrip("\\D[4]-\\D[2]-\\D[2]\\D[4]-\\D[2]-\\D[2]".as_bytes());
    }

    #[test]
    fn roundtrip_long_repetitive() {
        let data: Vec<u8> = b"0123456789".iter().cycle().take(10_000).copied().collect();
        roundtrip(&data);
        // And it actually found matches.
        let tokens = tokenize(&data);
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        assert!(tokens.len() < data.len() / 4);
    }

    #[test]
    fn roundtrip_overlapping_match() {
        // "aaaa..." forces overlapping copies (dist 1, len > 1).
        let data = vec![b'a'; 500];
        roundtrip(&data);
    }

    #[test]
    fn cost_monotone_in_repetition() {
        let rep = b"xyzxyzxyzxyzxyzxyzxyzxyz";
        let tokens_rep = tokenize(rep);
        let lits: Vec<u8> = (0..24u8)
            .map(|i| i.wrapping_mul(31).wrapping_add(7))
            .collect();
        let tokens_lit = tokenize(&lits);
        assert!(token_stream_cost_bits(&tokens_rep) < token_stream_cost_bits(&tokens_lit));
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[9]).is_err());
        assert!(decompress(&[1, 0, 0, 5, 0]).is_err()); // dist 0
        assert!(decompress(&[0]).is_err()); // truncated literal
    }

    #[test]
    fn min_match_respected() {
        for t in tokenize(b"abcdefgabcdefg") {
            if let Token::Match { len, .. } = t {
                assert!(len as usize >= MIN_MATCH);
            }
        }
    }
}
