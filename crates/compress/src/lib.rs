//! Self-contained LZSS compressor with an entropy-coded cost model.
//!
//! The paper's CDM baseline (Keogh et al., "Towards parameter-free data
//! mining") measures string distance with an off-the-shelf compressor:
//! `CDM(x, y) = C(xy) / (C(x) + C(y))`. We have no zip dependency, so this
//! crate implements the substitute: a real LZ77/LZSS match finder
//! ([`lzss`]) with verified round-trip decoding, plus an order-0 entropy
//! cost model ([`entropy`]) that plays the role of DEFLATE's Huffman stage.
//! [`compressed_len`] combines the two into the length function CDM needs.

pub mod entropy;
pub mod lzss;

pub use entropy::order0_entropy_bits;
pub use lzss::{compress, decompress, Token};

/// Estimated compressed size of `data` in bits: LZSS tokenization followed
/// by order-0 entropy coding of the token stream (literals and match
/// headers), mirroring DEFLATE's LZ77+Huffman pipeline.
pub fn compressed_len_bits(data: &[u8]) -> f64 {
    let tokens = lzss::tokenize(data);
    lzss::token_stream_cost_bits(&tokens)
}

/// Estimated compressed size in bytes (ceiling of the bit cost).
pub fn compressed_len(data: &[u8]) -> usize {
    (compressed_len_bits(data) / 8.0).ceil() as usize
}

/// ```
/// let same = adt_compress::cdm_distance(b"abcabcabc", b"abcabcabc");
/// let diff = adt_compress::cdm_distance(b"abcabcabc", b"XYZ123!!!");
/// assert!(same < diff);
/// ```
///
/// Compression-based dissimilarity measure of the CDM paper:
/// `CDM(x, y) = C(xy) / (C(x) + C(y))`, in `(0, 1]`-ish range — close to
/// 0.5 for highly similar strings, close to 1 for unrelated strings.
pub fn cdm_distance(x: &[u8], y: &[u8]) -> f64 {
    let cx = compressed_len_bits(x);
    let cy = compressed_len_bits(y);
    if cx + cy == 0.0 {
        return 0.0;
    }
    let mut xy = Vec::with_capacity(x.len() + y.len());
    xy.extend_from_slice(x);
    xy.extend_from_slice(y);
    compressed_len_bits(&xy) / (cx + cy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetitive_compresses_better_than_random() {
        let rep: Vec<u8> = b"abcabcabcabcabcabcabcabcabc".to_vec();
        let rnd: Vec<u8> = (0..27u8)
            .map(|i| i.wrapping_mul(97).wrapping_add(13))
            .collect();
        assert!(compressed_len(&rep) < compressed_len(&rnd));
    }

    #[test]
    fn cdm_lower_for_similar_strings() {
        let a = b"\\D[4]-\\D[2]-\\D[2]";
        let b = b"\\D[4]-\\D[2]-\\D[2]";
        let c = b"ITF $50.000 WTA International";
        let sim = cdm_distance(a, b);
        let dis = cdm_distance(a, c);
        assert!(sim < dis, "sim={sim} dis={dis}");
    }

    #[test]
    fn cdm_symmetric_enough() {
        let a = b"2011-01-01";
        let b = b"July-01";
        let d1 = cdm_distance(a, b);
        let d2 = cdm_distance(b, a);
        assert!((d1 - d2).abs() < 0.15, "d1={d1} d2={d2}");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(compressed_len(b""), 0);
        assert_eq!(cdm_distance(b"", b""), 0.0);
    }

    #[test]
    fn cdm_self_distance_below_unrelated() {
        let x = b"1,000,000";
        let y = b"London";
        assert!(cdm_distance(x, x) < cdm_distance(x, y));
    }
}
