//! Order-0 entropy utilities.

/// Shannon order-0 entropy of `data` in bits per symbol.
pub fn order0_entropy_bits_per_symbol(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u32; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Total order-0 entropy of `data` in bits.
pub fn order0_entropy_bits(data: &[u8]) -> f64 {
    order0_entropy_bits_per_symbol(data) * data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bytes_have_high_entropy() {
        let data: Vec<u8> = (0..=255).collect();
        let h = order0_entropy_bits_per_symbol(&data);
        assert!((h - 8.0).abs() < 1e-9);
    }

    #[test]
    fn constant_bytes_have_zero_entropy() {
        let data = vec![7u8; 100];
        assert_eq!(order0_entropy_bits(&data), 0.0);
    }

    #[test]
    fn two_symbol_entropy_is_one_bit() {
        let mut data = vec![0u8; 50];
        data.extend(vec![1u8; 50]);
        assert!((order0_entropy_bits_per_symbol(&data) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(order0_entropy_bits(b""), 0.0);
    }
}
