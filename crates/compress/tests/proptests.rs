//! Property tests: the compressor must round-trip arbitrary bytes.

use adt_compress::{cdm_distance, compress, compressed_len, decompress};
use proptest::prelude::*;

proptest! {
    #[test]
    fn roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let enc = compress(&data);
        let dec = decompress(&enc).expect("decode must succeed");
        prop_assert_eq!(dec, data);
    }

    #[test]
    fn roundtrip_ascii_text(s in "[ -~]{0,500}") {
        let data = s.as_bytes();
        let dec = decompress(&compress(data)).unwrap();
        prop_assert_eq!(dec.as_slice(), data);
    }

    #[test]
    fn compressed_len_positive_for_nonempty(data in proptest::collection::vec(any::<u8>(), 1..500)) {
        prop_assert!(compressed_len(&data) > 0);
    }

    #[test]
    fn cdm_in_reasonable_range(
        a in "[ -~]{1,80}",
        b in "[ -~]{1,80}",
    ) {
        let d = cdm_distance(a.as_bytes(), b.as_bytes());
        prop_assert!(d > 0.0 && d < 2.0, "d = {}", d);
    }

    #[test]
    fn concat_never_cheaper_than_larger_half(
        a in "[ -~]{1,100}",
        b in "[ -~]{1,100}",
    ) {
        // C(xy) should be at least roughly max(C(x), C(y)) minus coding
        // slack: the concatenation still contains all of the longer half's
        // information. Allow generous slack for model adaptation.
        let ca = adt_compress::compressed_len_bits(a.as_bytes());
        let cb = adt_compress::compressed_len_bits(b.as_bytes());
        let mut xy = a.clone().into_bytes();
        xy.extend_from_slice(b.as_bytes());
        let cxy = adt_compress::compressed_len_bits(&xy);
        prop_assert!(cxy + 1e-9 >= ca.max(cb) * 0.5, "cxy={} ca={} cb={}", cxy, ca, cb);
    }
}
