//! Property tests: the count-min guarantee must hold for arbitrary inputs.

use adt_sketch::{CountMinSketch, UpdateStrategy};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #[test]
    fn never_undercounts(
        inserts in proptest::collection::vec((0u64..500, 1u32..5), 1..400),
        width in 8usize..256,
        depth in 1usize..6,
    ) {
        for strategy in [UpdateStrategy::Plain, UpdateStrategy::Conservative] {
            let mut cms = CountMinSketch::new(width, depth, strategy, 42);
            let mut exact: HashMap<u64, u64> = HashMap::new();
            for &(k, v) in &inserts {
                cms.add(k, v);
                *exact.entry(k).or_default() += v as u64;
            }
            for (&k, &v) in &exact {
                prop_assert!(cms.estimate(k) >= v);
            }
        }
    }

    #[test]
    fn total_is_sum_of_values(
        inserts in proptest::collection::vec((0u64..100, 1u32..10), 0..100),
    ) {
        let mut cms = CountMinSketch::new(64, 3, UpdateStrategy::Plain, 1);
        let mut sum = 0u64;
        for &(k, v) in &inserts {
            cms.add(k, v);
            sum += v as u64;
        }
        prop_assert_eq!(cms.total(), sum);
    }

    #[test]
    fn conservative_dominated_by_plain(
        inserts in proptest::collection::vec((0u64..200, 1u32..4), 1..300),
    ) {
        // Conservative update estimates are always <= plain estimates for
        // the same stream and geometry.
        let mut plain = CountMinSketch::new(32, 3, UpdateStrategy::Plain, 42);
        let mut cons = CountMinSketch::new(32, 3, UpdateStrategy::Conservative, 42);
        for &(k, v) in &inserts {
            plain.add(k, v);
            cons.add(k, v);
        }
        for &(k, _) in &inserts {
            prop_assert!(cons.estimate(k) <= plain.estimate(k));
        }
    }

    #[test]
    fn estimates_deterministic(key in any::<u64>(), v in 1u32..100) {
        let mut a = CountMinSketch::new(128, 4, UpdateStrategy::Plain, 9);
        let mut b = CountMinSketch::new(128, 4, UpdateStrategy::Plain, 9);
        a.add(key, v);
        b.add(key, v);
        prop_assert_eq!(a.estimate(key), b.estimate(key));
    }
}
