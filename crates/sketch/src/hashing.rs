//! Pairwise-independent hash family for the sketch rows.
//!
//! Uses multiply-shift hashing over 64-bit keys: `h(x) = (a*x + b) >> s`
//! with odd `a`, which is universal for power-of-two ranges, plus a
//! splitmix64 finalizer to decorrelate low-entropy keys (pattern hashes
//! already mix well, but co-occurrence keys are packed pairs).

/// One member of the hash family, mapping `u64 -> [0, width)`.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct RowHasher {
    a: u64,
    b: u64,
}

/// splitmix64 finalizer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl RowHasher {
    /// Deterministically derives the `i`-th hasher from a seed.
    pub fn derive(seed: u64, i: usize) -> Self {
        let a = mix64(seed ^ (i as u64).wrapping_mul(0xA24BAED4963EE407)) | 1;
        let b = mix64(seed.wrapping_add(0x9E3779B97F4A7C15) ^ (i as u64));
        RowHasher { a, b }
    }

    /// Raw parameters (codec support).
    pub fn params(&self) -> (u64, u64) {
        (self.a, self.b)
    }

    /// Rebuilds a hasher from raw parameters (codec support).
    pub fn from_params(a: u64, b: u64) -> Self {
        RowHasher { a, b }
    }

    /// Hashes `key` into `[0, width)`.
    #[inline]
    pub fn index(&self, key: u64, width: usize) -> usize {
        let h = mix64(self.a.wrapping_mul(key).wrapping_add(self.b));
        // Multiply-high maps uniformly onto [0, width) without modulo bias.
        ((h as u128 * width as u128) >> 64) as usize
    }
}

/// Packs an ordered pair of 64-bit pattern hashes into one sketch key.
///
/// The pair is ordered (`lo <= hi`) so that `(a,b)` and `(b,a)` share a
/// key, matching unordered column co-occurrence.
#[inline]
pub fn pair_key(a: u64, b: u64) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    // Combine with distinct mixes so (lo,hi) != (hi,lo) collisions between
    // unrelated pairs stay at the 2^-64 level.
    mix64(lo) ^ mix64(hi).rotate_left(17) ^ lo.wrapping_mul(0x9E3779B97F4A7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn index_in_range() {
        let h = RowHasher::derive(42, 3);
        for w in [1usize, 2, 7, 1024, 1000003] {
            for k in 0..1000u64 {
                assert!(h.index(k, w) < w);
            }
        }
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let a = RowHasher::derive(7, 0);
        let b = RowHasher::derive(7, 0);
        let c = RowHasher::derive(7, 1);
        assert_eq!(a.index(123, 1 << 20), b.index(123, 1 << 20));
        // Different rows disagree on most keys.
        let disagreements = (0..1000u64)
            .filter(|&k| a.index(k, 1 << 20) != c.index(k, 1 << 20))
            .count();
        assert!(disagreements > 990);
    }

    #[test]
    fn distribution_roughly_uniform() {
        let h = RowHasher::derive(1, 0);
        let w = 64;
        let mut buckets = vec![0usize; w];
        let n = 64_000u64;
        for k in 0..n {
            buckets[h.index(mix64(k), w)] += 1;
        }
        let expected = n as usize / w;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                b > expected / 2 && b < expected * 2,
                "bucket {i} has {b}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn pair_key_symmetric() {
        assert_eq!(pair_key(3, 9), pair_key(9, 3));
        assert_eq!(pair_key(0, 0), pair_key(0, 0));
    }

    #[test]
    fn pair_key_mostly_injective() {
        let mut seen = HashSet::new();
        for a in 0..200u64 {
            for b in a..200u64 {
                seen.insert(pair_key(mix64(a), mix64(b)));
            }
        }
        // 200*201/2 = 20100 unordered pairs should all be distinct.
        assert_eq!(seen.len(), 20100);
    }
}
