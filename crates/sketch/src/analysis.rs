//! Power-law analysis of count distributions (§3.4).
//!
//! The paper notes that co-occurrence counts in real table corpora follow a
//! power law, which allows a sharper practical accuracy bound than the
//! worst-case `εN`. This module fits the tail exponent of an observed count
//! distribution (maximum-likelihood estimator of Clauset et al. for
//! discrete power laws) and measures the sketch's empirical error profile
//! against exact counts.

use crate::countmin::CountMinSketch;

/// MLE of the power-law exponent `α` for counts `>= x_min`:
/// `α = 1 + n / Σ ln(x_i / (x_min - 0.5))`.
///
/// Returns `None` when fewer than two samples reach `x_min`.
pub fn powerlaw_alpha(counts: &[u64], x_min: u64) -> Option<f64> {
    let xm = x_min.max(1) as f64;
    let tail: Vec<f64> = counts
        .iter()
        .filter(|&&c| c >= x_min.max(1))
        .map(|&c| c as f64)
        .collect();
    if tail.len() < 2 {
        return None;
    }
    let s: f64 = tail.iter().map(|&x| (x / (xm - 0.5)).ln()).sum();
    if s <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / s)
}

/// Empirical error profile of a sketch against exact counts.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ErrorProfile {
    /// Number of keys compared.
    pub keys: usize,
    /// Mean additive overestimate.
    pub mean_error: f64,
    /// Maximum additive overestimate.
    pub max_error: u64,
    /// Fraction of keys whose estimate is exact.
    pub exact_fraction: f64,
    /// Worst-case bound `εN` implied by the sketch geometry.
    pub theoretical_bound: f64,
}

/// Measures the sketch against the exact `(key, count)` pairs.
pub fn error_profile(cms: &CountMinSketch, exact: &[(u64, u64)]) -> ErrorProfile {
    let mut sum = 0u64;
    let mut max = 0u64;
    let mut exact_hits = 0usize;
    for &(k, v) in exact {
        let e = cms.estimate(k).saturating_sub(v);
        sum += e;
        max = max.max(e);
        if e == 0 {
            exact_hits += 1;
        }
    }
    let n = exact.len().max(1);
    ErrorProfile {
        keys: exact.len(),
        mean_error: sum as f64 / n as f64,
        max_error: max,
        exact_fraction: exact_hits as f64 / n as f64,
        theoretical_bound: cms.error_bound(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countmin::UpdateStrategy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn alpha_recovers_known_exponent() {
        // Sample from a discrete power law with alpha ≈ 2.5 via inverse CDF
        // approximation x = x_min * (1-u)^(-1/(alpha-1)).
        let mut rng = StdRng::seed_from_u64(3);
        let alpha = 2.5;
        let counts: Vec<u64> = (0..20_000)
            .map(|_| {
                let u: f64 = rng.random();
                (1.0 * (1.0 - u).powf(-1.0 / (alpha - 1.0))).round() as u64
            })
            .collect();
        let est = powerlaw_alpha(&counts, 2).unwrap();
        assert!((est - alpha).abs() < 0.3, "estimated {est}");
    }

    #[test]
    fn alpha_none_for_tiny_input() {
        assert!(powerlaw_alpha(&[5], 1).is_none());
        assert!(powerlaw_alpha(&[], 1).is_none());
    }

    #[test]
    fn profile_reports_exactness() {
        let mut cms = CountMinSketch::new(1 << 14, 4, UpdateStrategy::Conservative, 7);
        let exact: Vec<(u64, u64)> = (0..100u64).map(|k| (k * 17 + 1, (k % 9) + 1)).collect();
        for &(k, v) in &exact {
            cms.add(k, v as u32);
        }
        let p = error_profile(&cms, &exact);
        assert_eq!(p.keys, 100);
        assert!(p.exact_fraction > 0.95);
        assert!(p.mean_error < 1.0);
    }

    #[test]
    fn profile_detects_heavy_collisions() {
        let mut cms = CountMinSketch::new(4, 2, UpdateStrategy::Plain, 7);
        let exact: Vec<(u64, u64)> = (0..500u64).map(|k| (k, 1)).collect();
        for &(k, v) in &exact {
            cms.add(k, v as u32);
        }
        let p = error_profile(&cms, &exact);
        assert!(p.mean_error > 10.0);
        assert!(p.max_error > 10);
    }
}
