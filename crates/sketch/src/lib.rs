//! Count-min sketch for co-occurrence compression (§3.4 of the paper).
//!
//! The paper stores per-language pattern co-occurrence dictionaries whose
//! exact form can take GBs; a count-min sketch (Cormode & Muthukrishnan)
//! compresses them by orders of magnitude (4GB → 40MB in the paper) with
//! one-sided error: estimates never undercount, and overestimate by at most
//! `εN` with probability `1−δ`. Because co-occurrence counts in real table
//! corpora follow a power law, the practical error is far below the
//! worst-case bound; [`analysis`] quantifies that on observed data.

pub mod analysis;
pub mod codec;
pub mod countmin;
pub mod hashing;

pub use analysis::{error_profile, powerlaw_alpha, ErrorProfile};
pub use codec::{read_f64, read_varint, write_f64, write_varint};
pub use countmin::{CountMinSketch, UpdateStrategy};
