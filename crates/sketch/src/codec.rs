//! Compact binary serialization for sketches.
//!
//! JSON (the serde default) inflates counter tables ~4×; the binary codec
//! writes them verbatim. Shared varint helpers live here too — the stats
//! and model codecs build on them.

use crate::countmin::{CountMinSketch, UpdateStrategy};
use crate::hashing::RowHasher;
use std::io::{self, Read, Write};

/// LEB128 unsigned varint.
pub fn write_varint<W: Write>(w: &mut W, mut x: u64) -> io::Result<()> {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a LEB128 unsigned varint.
pub fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        x |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
    }
}

/// Writes an f64 as little-endian bits.
pub fn write_f64<W: Write>(w: &mut W, x: f64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

/// Reads a little-endian f64.
pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

const SKETCH_MAGIC: &[u8; 4] = b"ADS1";

impl CountMinSketch {
    /// Writes the sketch in the compact binary format.
    pub fn write_binary<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(SKETCH_MAGIC)?;
        write_varint(w, self.width() as u64)?;
        write_varint(w, self.depth() as u64)?;
        w.write_all(&[match self.strategy() {
            UpdateStrategy::Plain => 0u8,
            UpdateStrategy::Conservative => 1u8,
        }])?;
        write_varint(w, self.total())?;
        for h in self.hashers() {
            let (a, b) = h.params();
            w.write_all(&a.to_le_bytes())?;
            w.write_all(&b.to_le_bytes())?;
        }
        for &cell in self.table() {
            write_varint(w, cell as u64)?;
        }
        Ok(())
    }

    /// Reads a sketch written by [`CountMinSketch::write_binary`].
    pub fn read_binary<R: Read>(r: &mut R) -> io::Result<CountMinSketch> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != SKETCH_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad sketch magic",
            ));
        }
        let width = read_varint(r)? as usize;
        let depth = read_varint(r)? as usize;
        if width == 0 || depth == 0 || width.saturating_mul(depth) > (1 << 30) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad sketch dims",
            ));
        }
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let strategy = match tag[0] {
            0 => UpdateStrategy::Plain,
            1 => UpdateStrategy::Conservative,
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad strategy")),
        };
        let total = read_varint(r)?;
        let mut hashers = Vec::with_capacity(depth);
        for _ in 0..depth {
            let mut a = [0u8; 8];
            let mut b = [0u8; 8];
            r.read_exact(&mut a)?;
            r.read_exact(&mut b)?;
            hashers.push(RowHasher::from_params(
                u64::from_le_bytes(a),
                u64::from_le_bytes(b),
            ));
        }
        let mut table = Vec::with_capacity(width * depth);
        for _ in 0..width * depth {
            let v = read_varint(r)?;
            if v > u32::MAX as u64 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "cell overflow"));
            }
            table.push(v as u32);
        }
        Ok(CountMinSketch::from_parts(
            width, depth, strategy, hashers, table, total,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for x in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, x).unwrap();
            let back = read_varint(&mut buf.as_slice()).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn f64_roundtrip() {
        for x in [0.0, -0.5851, f64::MAX, f64::MIN_POSITIVE] {
            let mut buf = Vec::new();
            write_f64(&mut buf, x).unwrap();
            assert_eq!(read_f64(&mut buf.as_slice()).unwrap(), x);
        }
    }

    #[test]
    fn sketch_roundtrip_preserves_estimates() {
        let mut cms = CountMinSketch::new(512, 4, UpdateStrategy::Conservative, 9);
        for i in 0..2_000u64 {
            cms.add(i * 7 + 1, (i % 5 + 1) as u32);
        }
        let mut buf = Vec::new();
        cms.write_binary(&mut buf).unwrap();
        let back = CountMinSketch::read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back.total(), cms.total());
        assert_eq!(back.width(), cms.width());
        for i in 0..2_000u64 {
            assert_eq!(back.estimate(i * 7 + 1), cms.estimate(i * 7 + 1));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(CountMinSketch::read_binary(&mut &b"XXXX"[..]).is_err());
        assert!(CountMinSketch::read_binary(&mut &b"ADS1\xff\xff\xff\xff\xff\xff"[..]).is_err());
    }

    #[test]
    fn binary_smaller_than_json() {
        // The offline harness stubs serde_json with panicking bodies.
        let json_available =
            std::panic::catch_unwind(|| serde_json::to_string(&0u8).is_ok()).unwrap_or(false);
        if !json_available {
            eprintln!("skipping: JSON codec unavailable (stub serde_json)");
            return;
        }
        let mut cms = CountMinSketch::new(1024, 4, UpdateStrategy::Plain, 9);
        for i in 0..5_000u64 {
            cms.add(i, 1);
        }
        let mut bin = Vec::new();
        cms.write_binary(&mut bin).unwrap();
        let json = serde_json::to_vec(&cms).unwrap();
        assert!(
            bin.len() * 2 < json.len(),
            "bin {} json {}",
            bin.len(),
            json.len()
        );
    }
}
