//! The count-min sketch proper.

use crate::hashing::RowHasher;
use serde::{Deserialize, Serialize};

/// How increments are applied to the sketch rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateStrategy {
    /// Classic CM: every row cell is incremented.
    Plain,
    /// Conservative update (Estan & Varghese): only cells currently at the
    /// minimum are raised, which strictly reduces overestimation for the
    /// same space. Ablation benches compare the two (DESIGN.md §5).
    Conservative,
}

/// A count-min sketch over `u64` keys with `u32` counters.
///
/// ```
/// use adt_sketch::{CountMinSketch, UpdateStrategy};
/// let mut cms = CountMinSketch::new(1024, 4, UpdateStrategy::Conservative, 7);
/// cms.add(42, 3);
/// cms.add(42, 2);
/// assert!(cms.estimate(42) >= 5); // never undercounts
/// ```
///
/// With `width = ⌈e/ε⌉` and `depth = ⌈ln(1/δ)⌉`, the estimate satisfies
/// `v̂(k) ≤ v(k) + εN` with probability `1 − δ`, and never undercounts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    strategy: UpdateStrategy,
    hashers: Vec<RowHasher>,
    /// Row-major `depth × width` counters.
    table: Vec<u32>,
    /// Total of all inserted values (the `N` in the error bound).
    total: u64,
}

impl CountMinSketch {
    /// Builds a sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize, strategy: UpdateStrategy, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be positive");
        CountMinSketch {
            width,
            depth,
            strategy,
            hashers: (0..depth).map(|i| RowHasher::derive(seed, i)).collect(),
            table: vec![0; width * depth],
            total: 0,
        }
    }

    /// Builds a sketch meeting the `(ε, δ)` guarantee:
    /// `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`.
    pub fn with_error_bound(epsilon: f64, delta: f64, strategy: UpdateStrategy, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::new(width, depth, strategy, seed)
    }

    /// Builds a sketch whose table fits in `budget_bytes`, splitting the
    /// budget across `depth` rows. Used to hit the paper's "compress to X%
    /// of exact size" configurations (Figure 8(a)).
    pub fn with_byte_budget(
        budget_bytes: usize,
        depth: usize,
        strategy: UpdateStrategy,
        seed: u64,
    ) -> Self {
        let cells = (budget_bytes / 4).max(depth);
        let width = (cells / depth).max(1);
        CountMinSketch::new(width, depth, strategy, seed)
    }

    /// Sketch width (cells per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth (number of rows / hash functions).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total inserted value mass `N`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Size of the counter table in bytes.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    /// Adds `value` to `key`'s count.
    pub fn add(&mut self, key: u64, value: u32) {
        self.total += value as u64;
        match self.strategy {
            UpdateStrategy::Plain => {
                for (row, h) in self.hashers.iter().enumerate() {
                    let idx = row * self.width + h.index(key, self.width);
                    self.table[idx] = self.table[idx].saturating_add(value);
                }
            }
            UpdateStrategy::Conservative => {
                let cur = self.estimate(key);
                let target = cur.saturating_add(value as u64).min(u32::MAX as u64) as u32;
                for (row, h) in self.hashers.iter().enumerate() {
                    let idx = row * self.width + h.index(key, self.width);
                    if self.table[idx] < target {
                        self.table[idx] = target;
                    }
                }
            }
        }
    }

    /// Point estimate `v̂(k) = min_i M[i, h_i(k)]`.
    pub fn estimate(&self, key: u64) -> u64 {
        let mut best = u64::MAX;
        for (row, h) in self.hashers.iter().enumerate() {
            let idx = row * self.width + h.index(key, self.width);
            best = best.min(self.table[idx] as u64);
        }
        best
    }

    /// The worst-case additive error bound `εN` implied by the current
    /// width and inserted mass.
    pub fn error_bound(&self) -> f64 {
        std::f64::consts::E / self.width as f64 * self.total as f64
    }

    /// Merges another sketch into this one by cell-wise saturating
    /// addition; the inserted-mass totals add. Both sketches must share
    /// geometry, strategy, and hash family.
    ///
    /// For [`UpdateStrategy::Plain`] the merge is exact: plain updates are
    /// commutative cell additions, so merging shard-local sketches equals
    /// having streamed every key into one sketch. For
    /// [`UpdateStrategy::Conservative`] the merged table upper-bounds (and
    /// may exceed) the single-stream result — conservative updates are
    /// order-dependent — but the never-undercount guarantee is preserved:
    /// `min_i(a_i + b_i) >= min_i(a_i) + min_i(b_i) >= v_a(k) + v_b(k)`.
    pub fn merge_from(&mut self, other: &CountMinSketch) -> Result<(), &'static str> {
        if self.width != other.width || self.depth != other.depth {
            return Err("sketch geometry mismatch");
        }
        if self.strategy != other.strategy {
            return Err("sketch strategy mismatch");
        }
        if self
            .hashers
            .iter()
            .zip(&other.hashers)
            .any(|(a, b)| a.params() != b.params())
        {
            return Err("sketch hash family mismatch");
        }
        for (cell, &o) in self.table.iter_mut().zip(&other.table) {
            *cell = cell.saturating_add(o);
        }
        self.total += other.total;
        Ok(())
    }

    /// Update strategy accessor (codec support).
    pub fn strategy(&self) -> UpdateStrategy {
        self.strategy
    }

    /// Hash family accessor (codec support).
    pub fn hashers(&self) -> &[RowHasher] {
        &self.hashers
    }

    /// Counter table accessor (codec support).
    pub fn table(&self) -> &[u32] {
        &self.table
    }

    /// Reassembles a sketch from its raw parts (codec support). The parts
    /// must be mutually consistent (`table.len() == width * depth`,
    /// `hashers.len() == depth`).
    pub fn from_parts(
        width: usize,
        depth: usize,
        strategy: UpdateStrategy,
        hashers: Vec<RowHasher>,
        table: Vec<u32>,
        total: u64,
    ) -> Self {
        assert_eq!(table.len(), width * depth, "table size mismatch");
        assert_eq!(hashers.len(), depth, "hasher count mismatch");
        CountMinSketch {
            width,
            depth,
            strategy,
            hashers,
            table,
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    fn exact_and_sketch(
        strategy: UpdateStrategy,
        width: usize,
        n_keys: usize,
    ) -> (HashMap<u64, u64>, CountMinSketch) {
        let mut rng = StdRng::seed_from_u64(1234);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        let mut cms = CountMinSketch::new(width, 4, strategy, 99);
        for _ in 0..50_000 {
            // Zipf-ish key distribution.
            let k = (rng.random::<f64>().powi(3) * n_keys as f64) as u64;
            let v = rng.random_range(1..4u32);
            *exact.entry(k).or_default() += v as u64;
            cms.add(k, v);
        }
        (exact, cms)
    }

    #[test]
    fn never_undercounts_plain() {
        let (exact, cms) = exact_and_sketch(UpdateStrategy::Plain, 512, 5_000);
        for (&k, &v) in &exact {
            assert!(cms.estimate(k) >= v, "undercount for {k}");
        }
    }

    #[test]
    fn never_undercounts_conservative() {
        let (exact, cms) = exact_and_sketch(UpdateStrategy::Conservative, 512, 5_000);
        for (&k, &v) in &exact {
            assert!(cms.estimate(k) >= v, "undercount for {k}");
        }
    }

    #[test]
    fn conservative_no_worse_than_plain() {
        let (exact, plain) = exact_and_sketch(UpdateStrategy::Plain, 256, 5_000);
        let (_, cons) = exact_and_sketch(UpdateStrategy::Conservative, 256, 5_000);
        let err = |cms: &CountMinSketch| -> u64 {
            exact.iter().map(|(&k, &v)| cms.estimate(k) - v).sum()
        };
        assert!(err(&cons) <= err(&plain));
    }

    #[test]
    fn exact_when_ample_width() {
        // With width far above the number of keys, collisions are rare and
        // most estimates are exact.
        let (exact, cms) = exact_and_sketch(UpdateStrategy::Conservative, 1 << 18, 200);
        let exact_hits = exact.iter().filter(|(&k, &v)| cms.estimate(k) == v).count();
        assert!(exact_hits as f64 / exact.len() as f64 > 0.95);
    }

    #[test]
    fn error_bound_holds_in_aggregate() {
        let (exact, cms) = exact_and_sketch(UpdateStrategy::Plain, 1024, 10_000);
        let bound = cms.error_bound();
        let violations = exact
            .iter()
            .filter(|(&k, &v)| (cms.estimate(k) - v) as f64 > bound)
            .count();
        // delta = e^-4 with depth 4; allow slack on top.
        assert!(
            (violations as f64) < 0.05 * exact.len() as f64,
            "{violations}/{} beyond bound",
            exact.len()
        );
    }

    #[test]
    fn with_error_bound_dimensions() {
        let cms = CountMinSketch::with_error_bound(0.01, 0.01, UpdateStrategy::Plain, 0);
        assert_eq!(cms.width(), (std::f64::consts::E / 0.01).ceil() as usize);
        assert_eq!(cms.depth(), 5); // ln(100) ≈ 4.6 → 5
    }

    #[test]
    fn byte_budget_respected() {
        let cms = CountMinSketch::with_byte_budget(1 << 20, 4, UpdateStrategy::Plain, 0);
        assert!(cms.table_bytes() <= 1 << 20);
        assert!(cms.table_bytes() > (1 << 20) - 4 * 16);
    }

    #[test]
    fn unseen_key_estimate_is_small() {
        let (_, cms) = exact_and_sketch(UpdateStrategy::Conservative, 4096, 500);
        // A key far outside the inserted range should estimate near zero.
        let est = cms.estimate(u64::MAX - 12345);
        assert!(est < 100, "unseen estimate {est}");
    }

    #[test]
    fn merge_plain_is_exact() {
        let mut whole = CountMinSketch::new(1024, 4, UpdateStrategy::Plain, 7);
        let mut a = CountMinSketch::new(1024, 4, UpdateStrategy::Plain, 7);
        let mut b = CountMinSketch::new(1024, 4, UpdateStrategy::Plain, 7);
        for k in 0..500u64 {
            whole.add(k, (k % 7 + 1) as u32);
            if k % 2 == 0 {
                a.add(k, (k % 7 + 1) as u32);
            } else {
                b.add(k, (k % 7 + 1) as u32);
            }
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.total(), whole.total());
        assert_eq!(a.table(), whole.table());
    }

    #[test]
    fn merge_conservative_never_undercounts() {
        let mut a = CountMinSketch::new(64, 4, UpdateStrategy::Conservative, 7);
        let mut b = CountMinSketch::new(64, 4, UpdateStrategy::Conservative, 7);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for k in 0..300u64 {
            let v = (k % 5 + 1) as u32;
            *exact.entry(k % 40).or_default() += v as u64;
            if k % 2 == 0 {
                a.add(k % 40, v);
            } else {
                b.add(k % 40, v);
            }
        }
        a.merge_from(&b).unwrap();
        for (&k, &v) in &exact {
            assert!(a.estimate(k) >= v, "undercount for {k}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_sketches() {
        let mut a = CountMinSketch::new(64, 4, UpdateStrategy::Plain, 7);
        let wrong_width = CountMinSketch::new(32, 4, UpdateStrategy::Plain, 7);
        let wrong_strategy = CountMinSketch::new(64, 4, UpdateStrategy::Conservative, 7);
        let wrong_seed = CountMinSketch::new(64, 4, UpdateStrategy::Plain, 8);
        assert!(a.merge_from(&wrong_width).is_err());
        assert!(a.merge_from(&wrong_strategy).is_err());
        assert!(a.merge_from(&wrong_seed).is_err());
    }

    #[test]
    fn total_tracks_mass() {
        let mut cms = CountMinSketch::new(16, 2, UpdateStrategy::Plain, 0);
        cms.add(1, 5);
        cms.add(2, 7);
        assert_eq!(cms.total(), 12);
    }
}
