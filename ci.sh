#!/bin/sh
# Repository CI gate: formatting, lints, repo-invariant analysis, tests.
#
#   ./ci.sh                # format check + clippy -D warnings + adt-analyze
#                          # --deny + tests
#   ADT_OFFLINE=1 ./ci.sh  # same, in an air-gapped container: clippy and
#                          # tests run against the devstubs workspace copy
#                          # (see scripts/offline_check.sh)
#   ADT_SANITIZERS=1 ./ci.sh  # additionally run scripts/sanitizers.sh
#                             # (ASan/TSan; needs a nightly toolchain)
set -eu
cd "$(dirname "$0")"

# Quick bench smoke shared by both branches: write the report to a
# scratch path (the committed BENCH_scan.json holds release numbers and
# must not be overwritten by a CI debug run), then assert the adaptive
# scan dispatcher picks the direct kernel on the all-distinct shape and
# is no slower than the reference kernel there (10% debug-noise slack),
# and that the streaming co-occurrence mode keeps its bounded-memory
# promise: peak accumulator bytes under a fixed bound (the bench corpus
# is fixed-size in quick mode precisely so this bound is stable) while
# the exact pipeline exceeds it, at no more than 25% of the exact peak,
# byte-identical across 1/2/4/8 threads.
bench_smoke() {
    SMOKE_DIR="$(mktemp -d)"
    BENCH_OUT="$SMOKE_DIR/BENCH_scan.json" scripts/bench_report.sh quick
    python3 - "$SMOKE_DIR/BENCH_scan.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    data = json.load(f)
shape = next(s for s in data["shapes"] if s["shape"] == "all_distinct")
assert shape["kernel"] == "direct", f"all_distinct picked {shape['kernel']}"
cold, ref = shape["group_cold_median_ns"], shape["reference_median_ns"]
assert cold <= ref * 1.10, f"adaptive kernel slower than reference: {cold} vs {ref}"
print(f"bench smoke ok: all_distinct direct kernel {cold} ns vs reference {ref} ns")

ts = data["train_streaming"]
BOUND = 256 * 1024  # fixed: streaming accumulators stay under 256 KiB
peak, exact = ts["streaming_peak_cooc_bytes"], ts["exact_peak_cooc_bytes"]
assert peak <= BOUND, f"streaming peak {peak} exceeds the {BOUND} byte bound"
assert exact > BOUND, f"exact peak {exact} no longer exceeds {BOUND}: retune the bound"
assert peak * 4 <= exact, f"streaming peak {peak} above 25% of exact {exact}"
assert ts["identical"], "streaming training not byte-identical across thread counts"
print(
    f"bench smoke ok: streaming cooc peak {peak} B vs exact {exact} B "
    f"({100 * peak / exact:.1f}%), thread-invariant"
)
EOF
    rm -rf "$SMOKE_DIR"
}

echo "== cargo fmt --check"
cargo fmt --all --check

if [ "${ADT_OFFLINE:-0}" = "1" ]; then
    echo "== clippy (offline stubs)"
    scripts/offline_check.sh clippy --workspace --all-targets -- -D warnings
    echo "== adt-analyze --deny (offline stubs)"
    # The binary builds in the scratch copy but analyzes the real tree,
    # so the stub-parity rule sees devstubs/.
    scripts/offline_check.sh run -q -p adt-analyze -- --deny --root "$(pwd)"
    echo "== adt-analyze baseline ratchet (offline stubs)"
    scripts/analyze_baseline.sh
    echo "== tests (offline stubs)"
    scripts/offline_check.sh test --workspace -q
    echo "== serve smoke test (offline stubs)"
    scripts/offline_check.sh build --bin autodetect
    scripts/serve_smoke.sh "${ADT_OFFLINE_DIR:-/tmp/adt-offline-check}/target/debug/autodetect"
    echo "== learn loop smoke test (offline stubs)"
    scripts/learn_smoke.sh "${ADT_OFFLINE_DIR:-/tmp/adt-offline-check}/target/debug/autodetect"
    echo "== bench report smoke: kernels + train pipeline (offline stubs)"
    bench_smoke
    echo "== matrix report smoke: detector x error-class (offline stubs)"
    scripts/matrix_report.sh quick
else
    echo "== clippy"
    cargo clippy --workspace --all-targets -- -D warnings
    echo "== adt-analyze --deny"
    cargo run -q -p adt-analyze -- --deny
    echo "== adt-analyze baseline ratchet"
    scripts/analyze_baseline.sh
    echo "== tests"
    cargo test --workspace -q
    echo "== serve smoke test"
    cargo build --bin autodetect
    scripts/serve_smoke.sh target/debug/autodetect
    echo "== learn loop smoke test"
    scripts/learn_smoke.sh target/debug/autodetect
    echo "== bench report smoke: kernels + train pipeline"
    bench_smoke
    echo "== matrix report smoke: detector x error-class"
    scripts/matrix_report.sh quick
fi

if [ "${ADT_SANITIZERS:-0}" = "1" ]; then
    echo "== sanitizers (nightly)"
    scripts/sanitizers.sh
fi

echo "CI OK"
