#!/bin/sh
# Repository CI gate: formatting, lints, tests.
#
#   ./ci.sh                # format check + clippy -D warnings + tests
#   ADT_OFFLINE=1 ./ci.sh  # same, in an air-gapped container: clippy and
#                          # tests run against the devstubs workspace copy
#                          # (see scripts/offline_check.sh)
set -eu
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

if [ "${ADT_OFFLINE:-0}" = "1" ]; then
    echo "== clippy (offline stubs)"
    scripts/offline_check.sh clippy --workspace --all-targets -- -D warnings
    echo "== tests (offline stubs)"
    scripts/offline_check.sh test --workspace -q
    echo "== serve smoke test (offline stubs)"
    scripts/offline_check.sh build --bin autodetect
    scripts/serve_smoke.sh "${ADT_OFFLINE_DIR:-/tmp/adt-offline-check}/target/debug/autodetect"
    echo "== kernel bench report smoke (offline stubs)"
    scripts/bench_report.sh quick
else
    echo "== clippy"
    cargo clippy --workspace --all-targets -- -D warnings
    echo "== tests"
    cargo test --workspace -q
    echo "== serve smoke test"
    cargo build --bin autodetect
    scripts/serve_smoke.sh target/debug/autodetect
    echo "== kernel bench report smoke"
    scripts/bench_report.sh quick
fi

echo "CI OK"
