#!/bin/sh
# Regenerates every paper table/figure (results/*.json + printed tables).
# ADT_SCALE scales all corpus/test sizes (default 1.0 ≈ paper /10^3).
# Full run is ~60-90 min on one core; ADT_SCALE=0.1 for a quick pass.
set -x
cargo build --release -p adt-bench
for exp in exp_table3 exp_fig4 exp_table4 exp_fig5 exp_fig6 exp_fig7 \
           exp_fig8a exp_fig8b exp_fig8c exp_fig17b exp_table5 \
           exp_dt_ablation exp_paircap; do
  ./target/release/$exp || exit 1
done
# The smoothing sweep retrains the full 144-candidate pool seven times;
# run it at reduced scale unless the caller overrides.
ADT_SCALE="${ADT_FIG17A_SCALE:-0.4}" ./target/release/exp_fig17a || exit 1
./target/release/exp_report > results/summary.md
