//! End-to-end integration: corpus generation → training → detection →
//! evaluation, across all workspace crates.

use auto_detect::core::{train, AutoDetectConfig};
use auto_detect::corpus::{generate_corpus, Column, CorpusProfile, SourceTag};
use auto_detect::eval::metrics::{pooled_predictions, precision_at_k};
use auto_detect::eval::testcases::crude_stats;
use auto_detect::eval::{auto_eval_cases, run_method, Method};
use auto_detect::stats::{NpmiParams, StatsConfig};

fn trained_model() -> (auto_detect::core::AutoDetect, auto_detect::corpus::Corpus) {
    let mut p = CorpusProfile::web(3_000);
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let cfg = AutoDetectConfig {
        training_examples: 6_000,
        ..AutoDetectConfig::small()
    };
    let (model, report) = train(&corpus, &cfg).expect("training failed");
    assert!(model.num_languages() >= 1, "selection failed: {report:?}");
    (model, corpus)
}

#[test]
fn trained_model_meets_precision_on_auto_eval() {
    let (model, _corpus) = trained_model();
    // Independent clean source for test mixing.
    let mut p = CorpusProfile::wiki(2_000);
    p.dirty_rate = 0.0;
    let source = generate_corpus(&p);
    let crude = crude_stats(&source, &StatsConfig::default());
    let cases = auto_eval_cases(&source, &crude, NpmiParams::default(), 150, 750, 42);
    assert!(cases.iter().filter(|c| c.is_dirty()).count() >= 100);

    let m = Method::auto_detect(&model);
    let preds = run_method(&m, &cases);
    let pooled = pooled_predictions(&cases, &preds, 1);
    let p50 = precision_at_k(&pooled, 50);
    // The paper holds >0.9 at low k even under 1:10 mixes; at this small
    // scale we require a clearly-high bar.
    assert!(p50 >= 0.8, "precision@50 = {p50}");
    // And meaningful recall: at least half the planted errors are found
    // somewhere in the pool.
    let found = pooled.iter().filter(|pp| pp.correct).count();
    assert!(found >= 50, "only {found} planted errors recovered");
}

#[test]
fn detects_paper_figure1_style_errors() {
    let (model, _) = trained_model();
    // Figure 1(b): mixed date separators.
    let cases = [
        (
            vec!["2011-01-01", "2012-02-02", "2013-03-03", "2014/04/04"],
            "2014/04/04",
        ),
        // Figure 1(a)-style: trailing dot on a number.
        (vec!["1865", "1874", "1890", "1901."], "1901."),
        // Figure 2(b): mixed phone formats.
        (
            vec![
                "(425) 555-0101",
                "(425) 555-0192",
                "(425) 555-0147",
                "425-555-0170",
            ],
            "425-555-0170",
        ),
    ];
    for (values, expected) in cases {
        let col = Column::from_strs(&values, SourceTag::Local);
        let findings = model.detect_column(&col);
        assert!(
            findings.first().map(|f| f.suspect.as_str()) == Some(expected),
            "expected {expected:?} flagged in {values:?}, got {findings:?}"
        );
    }
}

#[test]
fn does_not_flag_globally_compatible_mixes() {
    let (model, _) = trained_model();
    // The paper's Col-1 and Col-2: ints + separated ints + floats.
    for values in [
        vec!["0", "17", "342", "999", "1,000"],
        vec!["0", "5", "42", "99", "1.99"],
    ] {
        let col = Column::from_strs(&values, SourceTag::Local);
        let findings = model.detect_column(&col);
        assert!(
            findings.is_empty(),
            "globally compatible column {values:?} was flagged: {findings:?}"
        );
    }
}

#[test]
fn model_roundtrip_preserves_detection() {
    let (model, _) = trained_model();
    let dir = std::env::temp_dir().join("adt_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.bin");
    auto_detect::core::model::save_model(&model, &path).unwrap();
    let back = auto_detect::core::model::load_model(&path).unwrap();
    let col = Column::from_strs(
        &["2011-01-01", "2012-02-02", "2014/04/04"],
        SourceTag::Local,
    );
    let a = model.detect_column(&col);
    let b = back.detect_column(&col);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.suspect, y.suspect);
        assert!((x.confidence - y.confidence).abs() < 1e-12);
    }
    std::fs::remove_file(path).ok();
}
