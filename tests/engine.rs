//! Integration tests for the parallel scan engine and the unified
//! Detector API, through the public `auto_detect` surface.

use auto_detect::core::{
    load_model, save_model, train, AdtError, AutoDetect, AutoDetectConfig, Detector, ScanEngine,
    ScanReport,
};
use auto_detect::corpus::{generate_corpus, Column, CorpusProfile, SourceTag};
use std::sync::OnceLock;

/// One small coarse-space model shared across tests (training dominates
/// test wall time).
fn model() -> &'static AutoDetect {
    static MODEL: OnceLock<AutoDetect> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut p = CorpusProfile::web(3_000);
        p.dirty_rate = 0.0;
        let corpus = generate_corpus(&p);
        let cfg = AutoDetectConfig::builder()
            .training_examples(6_000)
            .space(auto_detect::core::LanguageSpace::Coarse36)
            .build()
            .expect("valid config");
        let (model, _) = train(&corpus, &cfg).expect("training failed");
        model
    })
}

fn dirty_columns(n: usize) -> Vec<Column> {
    let mut p = CorpusProfile::ent_xls(n);
    p.dirty_rate = 0.4;
    generate_corpus(&p).columns().to_vec()
}

/// Findings rendered to a canonical string (ColumnFinding has no
/// PartialEq; timings in the report legitimately differ between runs).
fn repr(report: &ScanReport) -> String {
    let mut s = String::new();
    for f in &report.findings {
        s.push_str(&format!(
            "{} {:?} {:?} {:.6}\n",
            f.column_index, f.finding.suspect, f.finding.witness, f.finding.confidence
        ));
    }
    s
}

#[test]
fn findings_identical_across_thread_counts() {
    let columns = dirty_columns(120);
    let engine = ScanEngine::from_model(model().clone());
    let serial = engine
        .clone()
        .with_threads(1)
        .scan_columns(&columns)
        .unwrap();
    let parallel = engine.with_threads(8).scan_columns(&columns).unwrap();
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 8);
    assert_eq!(repr(&serial), repr(&parallel));
    assert_eq!(serial.stats.values_scored, parallel.stats.values_scored);
    assert_eq!(serial.stats.pairs_scored, parallel.stats.pairs_scored);
    assert_eq!(serial.stats.pairs_flagged, parallel.stats.pairs_flagged);
    assert!(
        !serial.findings.is_empty(),
        "dirty corpus produced no findings"
    );
}

#[test]
fn streamed_csv_matches_in_memory() {
    let columns = dirty_columns(40);
    let rows = columns.iter().map(|c| c.len()).max().unwrap();
    let mut csv = String::from(
        &columns
            .iter()
            .enumerate()
            .map(|(i, _)| format!("c{i}"))
            .collect::<Vec<_>>()
            .join("\t"),
    );
    csv.push('\n');
    for r in 0..rows {
        let row: Vec<&str> = columns
            .iter()
            .map(|c| c.values.get(r).map(|v| v.as_str()).unwrap_or(""))
            .collect();
        csv.push_str(&row.join("\t"));
        csv.push('\n');
    }
    let engine = ScanEngine::from_model(model().clone());
    let streamed = engine.scan_csv(csv.as_bytes(), '\t', true).unwrap();
    // Equivalent in-memory columns: same values, headers attached.
    let mem_columns: Vec<Column> = columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut col = Column::from_strs(
                &c.values.iter().map(|v| v.as_str()).collect::<Vec<_>>(),
                SourceTag::Csv,
            );
            col.header = Some(format!("c{i}"));
            col
        })
        .collect();
    let in_memory = engine.scan_columns(&mem_columns).unwrap();
    assert_eq!(repr(&streamed), repr(&in_memory));
    assert_eq!(streamed.columns.len(), in_memory.columns.len());
    for (s, m) in streamed.columns.iter().zip(&in_memory.columns) {
        assert_eq!(s.header, m.header);
        assert_eq!(s.num_findings, m.num_findings);
    }
}

#[test]
fn autodetect_is_a_detector() {
    let det: &dyn Detector = model();
    assert_eq!(det.name(), "Auto-Detect");
    let col = Column::from_strs(
        &["2011-01-01", "2012-02-02", "2013-03-03", "2014/04/04"],
        SourceTag::Csv,
    );
    let preds = det.detect(&col);
    assert!(!preds.is_empty());
    assert_eq!(preds[0].value, "2014/04/04");
}

#[test]
fn model_roundtrips_through_binary_codec() {
    let dir = std::env::temp_dir().join("adt_engine_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.bin");
    save_model(model(), &path).unwrap();
    let loaded = load_model(&path).unwrap();
    let columns = dirty_columns(20);
    let a = ScanEngine::from_model(model().clone())
        .scan_columns(&columns)
        .unwrap();
    let b = ScanEngine::from_model(loaded)
        .scan_columns(&columns)
        .unwrap();
    assert_eq!(repr(&a), repr(&b));
}

#[test]
fn errors_are_typed() {
    // Missing model file surfaces as a typed error naming the path.
    match load_model("/nonexistent/adt/model.bin") {
        Err(AdtError::ModelNotFound(path)) => {
            assert!(path.contains("/nonexistent/adt/model.bin"), "{path}")
        }
        other => panic!("expected AdtError::ModelNotFound, got {other:?}"),
    }
    // Invalid configs are rejected at build time.
    assert!(matches!(
        AutoDetectConfig::builder().precision_target(1.5).build(),
        Err(AdtError::Config(_))
    ));
    assert!(matches!(
        AutoDetectConfig::builder().max_distinct_values(1).build(),
        Err(AdtError::Config(_))
    ));
}
