//! End-to-end serving test through the `autodetect` binary: save a model,
//! `autodetect serve`, `autodetect query` a CSV against it, `autodetect
//! stop`, and check the server exits cleanly.

use auto_detect::serve::testutil::tiny_model;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_autodetect")
}

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join("adt_serve_cli_tests").join(name);
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Kills the server on drop so a failed assertion can't leak a process.
struct Reap(Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn serve_query_stop_round_trip() {
    let dir = tmp_dir("round_trip");
    let models = dir.join("models");
    std::fs::create_dir_all(&models).unwrap();
    adt_core::save_model(&tiny_model(), models.join("default.bin")).unwrap();

    let csv = dir.join("ledger.csv");
    std::fs::write(
        &csv,
        "when,amount\n2019-03-01,120\n2019-03-02,95\n2019/03/04,130\n2019-03-05,88\n",
    )
    .unwrap();

    let mut server = Reap(
        Command::new(bin())
            .args([
                "serve",
                "--models",
                models.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap(),
    );

    // The server prints "listening on ADDR" once bound; read it to learn
    // the ephemeral port.
    let stdout = server.0.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .unwrap();
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().to_string();
        }
    };

    let query = Command::new(bin())
        .args(["query", "--addr", &addr, csv.to_str().unwrap()])
        .output()
        .unwrap();
    let out = String::from_utf8_lossy(&query.stdout);
    let err = String::from_utf8_lossy(&query.stderr);
    assert!(query.status.success(), "query failed: {out}\n{err}");
    assert!(out.contains("2019/03/04"), "slash date not flagged: {out}");
    assert!(out.contains("served by model \"default\""), "{out}");

    let stop = Command::new(bin())
        .args(["stop", "--addr", &addr])
        .output()
        .unwrap();
    assert!(
        stop.status.success(),
        "{}",
        String::from_utf8_lossy(&stop.stderr)
    );

    // The server must now exit on its own, cleanly.
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = server.0.try_wait().unwrap() {
            break status;
        }
        assert!(Instant::now() < deadline, "server did not exit after stop");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "server exited with {status}");
}

#[test]
fn query_against_no_server_fails_cleanly() {
    let dir = tmp_dir("no_server");
    let csv = dir.join("x.csv");
    std::fs::write(&csv, "a\n1\n").unwrap();
    // Port 1 is essentially never listening.
    let out = Command::new(bin())
        .args(["query", "--addr", "127.0.0.1:1", csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn serve_refuses_empty_model_dir() {
    let dir = tmp_dir("empty_models");
    let out = Command::new(bin())
        .args(["serve", "--models", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("model"), "{stderr}");
}
