//! Integration: the paper's qualitative claims about local vs global
//! methods, exercised across crates.

use auto_detect::baselines::{Detector, PotterWheelDetector};
use auto_detect::core::{train, AutoDetectConfig};
use auto_detect::corpus::{generate_corpus, Column, CorpusProfile, SourceTag};
use auto_detect::eval::metrics::{pooled_predictions, precision_at_k};
use auto_detect::eval::testcases::crude_stats;
use auto_detect::eval::{auto_eval_cases, run_method, Method};
use auto_detect::stats::{NpmiParams, StatsConfig};

/// Potter's Wheel incorrectly flags the paper's Col-1 ("1,000" among
/// 0..999) while Auto-Detect does not — the introduction's key contrast.
#[test]
fn col1_contrast_between_local_and_global() {
    let mut vals: Vec<String> = (0..60).map(|i| format!("{}", (i * 17) % 1000)).collect();
    vals.push("1,000".to_string());
    let col = Column::new(vals, SourceTag::Local);

    let pw = PotterWheelDetector::default();
    let pw_preds = pw.detect(&col);
    assert!(
        pw_preds.iter().any(|p| p.value == "1,000"),
        "PWheel should (incorrectly) flag 1,000 — the MDL weakness"
    );

    let mut p = CorpusProfile::web(3_000);
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let cfg = AutoDetectConfig {
        training_examples: 6_000,
        ..AutoDetectConfig::small()
    };
    let (model, _) = train(&corpus, &cfg).expect("training failed");
    let ad_findings = model.detect_column(&col);
    assert!(
        !ad_findings.iter().any(|f| f.suspect == "1,000"),
        "Auto-Detect must not flag 1,000: {ad_findings:?}"
    );
}

/// The 50-50 format mix (Col-3): local MDL is silent, Auto-Detect flags.
#[test]
fn col3_balanced_mix_detected_only_globally() {
    let mut vals: Vec<String> = (0..8).map(|i| format!("201{i}-01-0{}", i + 1)).collect();
    vals.extend((0..8).map(|i| format!("201{i}/01/0{}", i + 1)));
    let col = Column::new(vals, SourceTag::Local);

    let pw_preds = PotterWheelDetector::default().detect(&col);
    assert!(
        pw_preds.is_empty(),
        "PWheel sees two regular patterns and stays silent: {pw_preds:?}"
    );

    let mut p = CorpusProfile::web(3_000);
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let cfg = AutoDetectConfig {
        training_examples: 6_000,
        ..AutoDetectConfig::small()
    };
    let (model, _) = train(&corpus, &cfg).expect("training failed");
    let findings = model.detect_column(&col);
    assert!(
        !findings.is_empty(),
        "Auto-Detect must flag the balanced format mix"
    );
}

/// On pooled auto-eval, Auto-Detect's precision at moderate k beats each
/// local baseline's — the Figure 5 ordering at our scale.
#[test]
fn autodetect_beats_local_baselines_on_auto_eval() {
    let mut p = CorpusProfile::web(3_000);
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let cfg = AutoDetectConfig {
        training_examples: 6_000,
        ..AutoDetectConfig::small()
    };
    let (model, _) = train(&corpus, &cfg).expect("training failed");

    let mut wp = CorpusProfile::wiki(2_500);
    wp.dirty_rate = 0.0;
    let source = generate_corpus(&wp);
    let crude = crude_stats(&source, &StatsConfig::default());
    let cases = auto_eval_cases(&source, &crude, NpmiParams::default(), 200, 1_000, 77);

    let score = |m: &Method<'_>| {
        let preds = run_method(m, &cases);
        let pooled = pooled_predictions(&cases, &preds, 1);
        precision_at_k(&pooled, 100)
    };
    let ad = score(&Method::auto_detect(&model));
    let pw = score(&Method::baseline(Box::new(PotterWheelDetector::default())));
    let linear = score(&Method::baseline(Box::new(
        auto_detect::baselines::LinearDetector::default(),
    )));
    assert!(ad >= pw, "Auto-Detect p@100 {ad} should be >= PWheel {pw}");
    assert!(
        ad > linear,
        "Auto-Detect p@100 {ad} should beat Linear {linear}"
    );
    assert!(ad >= 0.7, "Auto-Detect p@100 too low: {ad}");
}
