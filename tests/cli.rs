//! End-to-end CLI tests: gen-corpus → train → scan → check through the
//! `autodetect` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_autodetect")
}

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join("adt_cli_tests").join(name);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn usage_on_no_args() {
    let out = Command::new(bin()).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("autodetect train"));
}

#[test]
fn unknown_option_value_errors() {
    let out = Command::new(bin())
        .args(["train", "--out"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("expects a value"));
}

#[test]
fn scan_requires_model() {
    let dir = tmp_dir("scan_requires_model");
    let csv = dir.join("x.csv");
    std::fs::write(&csv, "a\n1\n2\n").unwrap();
    let out = Command::new(bin())
        .args(["scan", csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--model"));
}

/// The findings portion of a scan's stdout: everything up to the total
/// line, excluding the timing summary (which varies run to run).
fn findings_part(stdout: &str) -> String {
    stdout
        .lines()
        .take_while(|l| !l.contains("suspicious value(s)"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The full pipeline at miniature scale: generate a corpus, train a
/// coarse-space model (binary codec), scan a CSV with a planted
/// date-format mix — serial, parallel, and streamed — and check a value
/// pair.
#[test]
fn full_pipeline_detects_planted_error() {
    let dir = tmp_dir("full_pipeline");
    let corpus = dir.join("corpus.txt");
    let model = dir.join("model.bin");
    let csv = dir.join("data.csv");

    let out = Command::new(bin())
        .args([
            "gen-corpus",
            "--profile",
            "web",
            "--columns",
            "2500",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = Command::new(bin())
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--examples",
            "5000",
            "--space",
            "coarse",
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    std::fs::write(
        &csv,
        "when,amount\n2019-03-01,120\n2019-03-02,95\n2019/03/04,130\n2019-03-05,88\n",
    )
    .unwrap();
    let out = Command::new(bin())
        .args([
            "scan",
            csv.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("2019/03/04"),
        "scan should flag the slash date:\n{stdout}"
    );
    assert!(
        stdout.contains("[amount] ok"),
        "clean column flagged:\n{stdout}"
    );

    // The engine guarantees identical findings at any thread count and in
    // streaming mode; only the timing summary may differ.
    for extra in [&["--threads", "1"][..], &["--threads", "8"], &["--stream"]] {
        let rerun = Command::new(bin())
            .args([
                "scan",
                csv.to_str().unwrap(),
                "--model",
                model.to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .unwrap();
        assert!(
            rerun.status.success(),
            "{}",
            String::from_utf8_lossy(&rerun.stderr)
        );
        assert_eq!(
            findings_part(&stdout),
            findings_part(&String::from_utf8_lossy(&rerun.stdout)),
            "scan findings changed under {extra:?}"
        );
    }

    let out = Command::new(bin())
        .args([
            "check",
            "2011-01-01",
            "2011/01/02",
            "--model",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("INCOMPATIBLE"));

    let out = Command::new(bin())
        .args(["check", "12", "3,000", "--model", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("compatible"));
}

/// `scan --detectors` runs the ensemble engine: findings are
/// byte-identical at any thread count, the lane summary names every
/// member, and the flag-validation errors fire before any work.
#[test]
fn ensemble_scan_is_thread_invariant_and_validates_flags() {
    let dir = tmp_dir("ensemble_scan");
    let corpus = dir.join("corpus.txt");
    let model = dir.join("model.bin");
    let csv = dir.join("data.csv");

    for args in [
        vec![
            "gen-corpus",
            "--profile",
            "web",
            "--columns",
            "1500",
            "--out",
            corpus.to_str().unwrap(),
        ],
        vec![
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--examples",
            "3000",
            "--space",
            "coarse",
            "--out",
            model.to_str().unwrap(),
        ],
    ] {
        let out = Command::new(bin()).args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::write(
        &csv,
        "when,amount\n2019-03-01,120\n2019-03-02,95\n2019/03/04,130\n2019-03-05,88\n",
    )
    .unwrap();

    let scan = |extra: &[&str]| {
        Command::new(bin())
            .args([
                "scan",
                csv.to_str().unwrap(),
                "--model",
                model.to_str().unwrap(),
                "--detectors",
                "autodetect,fregex",
            ])
            .args(extra)
            .output()
            .unwrap()
    };

    let out = scan(&["--threads", "1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        stdout.contains("2019/03/04"),
        "ensemble union should keep the slash date:\n{stdout}"
    );
    assert!(stdout.contains("merge union"), "{stdout}");
    assert!(stdout.contains("Auto-Detect"), "{stdout}");
    assert!(stdout.contains("F-Regex"), "{stdout}");

    // Byte-identical findings at any thread count; only timings differ.
    let rerun = scan(&["--threads", "8"]);
    assert!(
        rerun.status.success(),
        "{}",
        String::from_utf8_lossy(&rerun.stderr)
    );
    assert_eq!(
        findings_part(&stdout),
        findings_part(&String::from_utf8_lossy(&rerun.stdout)),
        "ensemble findings changed with --threads 8"
    );

    // A vote merge also runs (both members must agree).
    let out = scan(&["--merge", "vote:2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("merge vote:2"));

    // Flag validation: --merge without --detectors, --stream with
    // --detectors, unknown detector names.
    let bad = |args: &[&str], needle: &str| {
        let out = Command::new(bin())
            .args(["scan", csv.to_str().unwrap(), "--model"])
            .arg(model.to_str().unwrap())
            .args(args)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    };
    bad(&["--merge", "vote:2"], "--detectors");
    bad(&["--detectors", "autodetect", "--stream"], "--stream");
    bad(&["--detectors", "autodetect,nonesuch"], "nonesuch");
    bad(
        &["--detectors", "autodetect", "--merge", "vote:9"],
        "vote:9",
    );
}
