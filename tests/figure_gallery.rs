//! A gallery of the paper's Figure 1 / Figure 2 error archetypes, each
//! reproduced as a column and detected end-to-end by a trained model.

use auto_detect::core::{train, AutoDetect, AutoDetectConfig};
use auto_detect::corpus::{generate_corpus, Column, CorpusProfile, SourceTag};

fn model() -> AutoDetect {
    let mut p = CorpusProfile::web(4_000);
    p.dirty_rate = 0.0;
    let corpus = generate_corpus(&p);
    let cfg = AutoDetectConfig {
        training_examples: 8_000,
        ..AutoDetectConfig::small()
    };
    let (model, _) = train(&corpus, &cfg).expect("training failed");
    model
}

fn expect_flagged(model: &AutoDetect, label: &str, values: &[&str], expected: &str) {
    let col = Column::from_strs(values, SourceTag::Local);
    let findings = model.detect_column(&col);
    assert!(
        findings.iter().any(|f| f.suspect == expected),
        "{label}: expected {expected:?} flagged in {values:?}, got {findings:?}"
    );
}

#[test]
fn figure1_and_figure2_archetypes() {
    let model = model();

    // Figure 1(a): extra dot at the end of a number.
    expect_flagged(
        &model,
        "fig1a extra dot",
        &["1865", "1874", "1890", "1901", "1912."],
        "1912.",
    );

    // Figure 1(b)/(h): mixed date formats.
    expect_flagged(
        &model,
        "fig1b mixed dates",
        &["2011.01.01", "2011.02.14", "2011/03/02", "2011.04.22"],
        "2011/03/02",
    );

    // Figure 1(c): inconsistently formatted weights. Note the limitation
    // the paper defers to future work ("semantic data values"): a unit
    // swap that preserves the exact character pattern ("76 kg" vs
    // "168 lb") is invisible to *any* generalization language — only
    // format differences are detectable by pattern statistics.
    expect_flagged(
        &model,
        "fig1c mixed weights",
        &["76 kg", "81 kg", "93 kg", "168lbs", "70 kg"],
        "168lbs",
    );

    // Figure 1(d): a foreign placeholder among scores ("—" is not one of
    // the placeholders that legitimately co-occur with scores).
    expect_flagged(
        &model,
        "fig1d score placeholder",
        &["2-1", "0-0", "3-2", "—", "1-1"],
        "—",
    );

    // Figure 1(e): an hour-scale entry among mm:ss song lengths is fine
    // (durations mix), but a date is not.
    expect_flagged(
        &model,
        "fig1e song lengths",
        &["3:45", "4:02", "2:58", "03.45", "3:12"],
        "03.45",
    );

    // Figure 1(f): parenthetical annotation on one entry.
    expect_flagged(
        &model,
        "fig1f parenthesis",
        &["3:45", "4:02", "2:58", "3:12 (live)", "3:30"],
        "3:12 (live)",
    );

    // Figure 1(g): score with the wrong separator.
    expect_flagged(
        &model,
        "fig1g scores",
        &["2-1", "0-0", "3-2", "2:1", "1-1"],
        "2:1",
    );

    // Figure 2(a): extra space inside a value.
    expect_flagged(
        &model,
        "fig2a extra space",
        &[
            "John Smith",
            "Jane  King",
            "Maria Garcia",
            "David Lee",
            "Emma Hall",
        ],
        "Jane  King",
    );

    // Figure 2(b): mixed phone formats.
    expect_flagged(
        &model,
        "fig2b mixed phones",
        &[
            "(425) 555-0101",
            "(425) 555-0192",
            "425-555-0147",
            "(425) 555-0170",
        ],
        "425-555-0147",
    );
}

#[test]
fn gallery_counterexamples_stay_clean() {
    let model = model();
    // The legitimate mixes the paper warns local methods about.
    for (label, values) in [
        ("col1 separators", vec!["0", "17", "342", "999", "1,000"]),
        ("col2 floats", vec!["0", "5", "42", "99", "1.99"]),
        ("durations", vec!["3:45", "4:02", "1:02:33", "2:58"]),
        ("score placeholders", vec!["2-1", "0-0", "N/A", "3-2"]),
    ] {
        let col = Column::from_strs(&values, SourceTag::Local);
        let findings = model.detect_column(&col);
        assert!(
            findings.is_empty(),
            "{label}: legitimate mix flagged: {findings:?}"
        );
    }
}
