//! Stub criterion: each benchmark body runs once (smoke semantics), no
//! statistics. Enough to type-check and smoke-run `cargo bench` offline.

use std::marker::PhantomData;
use std::time::Instant;

#[derive(Default)]
pub struct Criterion {}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: PhantomData<&'a mut Criterion>,
}

pub struct Bencher {}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        eprintln!("    one iteration: {:.3?}", t0.elapsed());
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("bench {id} (stub criterion: single run)");
        f(&mut Bencher {});
        self
    }
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench {}/{id} (stub criterion: single run)", self.name);
        f(&mut Bencher {});
        self
    }

    pub fn finish(self) {}
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
