//! Stub parking_lot: functional `Mutex` over `std::sync::Mutex`.

use std::ops::{Deref, DerefMut};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}
