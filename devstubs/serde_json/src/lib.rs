//! Stub serde_json: signatures only; every function panics when called.
//! Offline-runnable tests must use the binary model codec instead.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::io;

#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stub serde_json error")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_writer<W: io::Write, T: ?Sized + Serialize>(_writer: W, _value: &T) -> Result<()> {
    unimplemented!("stub serde_json")
}

pub fn to_writer_pretty<W: io::Write, T: ?Sized + Serialize>(
    _writer: W,
    _value: &T,
) -> Result<()> {
    unimplemented!("stub serde_json")
}

pub fn to_vec<T: ?Sized + Serialize>(_value: &T) -> Result<Vec<u8>> {
    unimplemented!("stub serde_json")
}

pub fn to_string<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    unimplemented!("stub serde_json")
}

pub fn from_reader<R: io::Read, T: DeserializeOwned>(_reader: R) -> Result<T> {
    unimplemented!("stub serde_json")
}

pub fn from_str<T: DeserializeOwned>(_s: &str) -> Result<T> {
    unimplemented!("stub serde_json")
}
