//! Stub proptest: empty. The offline check script removes
//! `tests/proptests.rs` files from its scratch copy, so nothing links
//! against this crate's (absent) API.
