//! Stub bytes: empty; declared in workspace.dependencies but unused by
//! any member crate.
