//! Stub serde: traits blanket-implemented for every type, so derives
//! (which expand to nothing) and trait bounds type-check. Serialization
//! itself is not functional offline.

// Macro namespace: the no-op derives. Type namespace: the traits below.
// Same-name coexistence mirrors the real serde crate.
pub use serde_derive::{Deserialize, Serialize};

pub trait Serializer: Sized {
    type Ok;
    type Error;
}

pub trait Deserializer<'de>: Sized {
    type Error;
}

pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: ?Sized> Serialize for T {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        unimplemented!("stub serde cannot serialize")
    }
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<'de, T> Deserialize<'de> for T {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        unimplemented!("stub serde cannot deserialize")
    }
}

pub mod de {
    pub use super::{Deserialize, Deserializer};

    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}

pub mod ser {
    pub use super::{Serialize, Serializer};
}
