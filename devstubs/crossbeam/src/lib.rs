//! Stub crossbeam: `thread::scope` delegating to `std::thread::scope`,
//! so spawned closures run on real OS threads and parallel scaling is
//! observable offline. Panics in spawned closures are surfaced the way
//! real crossbeam surfaces them: `join` returns `Err(payload)`, and a
//! panic from an unjoined handle makes `scope` itself return `Err`.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type Payload = Box<dyn Any + Send + 'static>;
    type PanicList = Arc<Mutex<Vec<Payload>>>;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        panics: PanicList,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Payload> {
            match self.inner.join() {
                Ok(Some(v)) => Ok(v),
                // The payload went to the scope's panic list; report the
                // panic without it (callers only branch on Err).
                _ => Err(Box::new("worker thread panicked")),
            }
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let panics = Arc::clone(&self.panics);
            let inner = self.inner.spawn(move || {
                let scope = Scope {
                    inner: inner_scope,
                    panics: Arc::clone(&panics),
                };
                match catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                    Ok(v) => Some(v),
                    Err(payload) => {
                        panics.lock().unwrap_or_else(|e| e.into_inner()).push(payload);
                        None
                    }
                }
            });
            ScopedJoinHandle { inner }
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panics: PanicList = Arc::new(Mutex::new(Vec::new()));
        let r = std::thread::scope(|s| {
            f(&Scope {
                inner: s,
                panics: Arc::clone(&panics),
            })
        });
        let first_panic = panics.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match first_panic {
            Some(payload) => Err(payload),
            None => Ok(r),
        }
    }
}
