//! Stub serde derive macros: expand to nothing. The stub `serde` crate
//! blanket-implements its traits for every type, so empty expansions
//! keep `#[derive(Serialize, Deserialize)]` type-checking.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
