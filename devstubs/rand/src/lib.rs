//! Stub rand: a functional, deterministic SplitMix64-based subset of the
//! rand 0.9 API surface this workspace uses. Streams differ from the
//! real crate — tests must assert properties, not exact sampled values.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Uniform sampling from a range (the subset of rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let r: f64 = ((self.start as f64)..(self.end as f64)).sample_single(rng);
        r as f32
    }
}

/// Types producible by `Rng::random` (subset of `StandardUniform`).
pub trait RandomValue {
    fn random_value<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl RandomValue for f64 {
    fn random_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl RandomValue for bool {
    fn random_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for u64 {
    fn random_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

pub trait Rng: RngCore {
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn random<T: RandomValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_value(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random_value(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — not the real StdRng algorithm, but deterministic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};

    /// Subset of rand's `IndexedRandom`: uniform choice from a slice.
    pub trait IndexedRandom {
        type Output;
        fn choose<R: super::Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
        fn choose_multiple<R: super::Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: super::Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() as usize) % self.len();
                Some(&self[i])
            }
        }

        fn choose_multiple<R: super::Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let n = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..n {
                let j = i + (rng.next_u64() as usize) % (idx.len() - i);
                idx.swap(i, j);
            }
            idx[..n]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }
}
