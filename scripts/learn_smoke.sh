#!/bin/sh
# Online learning smoke test: train a tiny model with the real CLI, start
# `autodetect serve --learn` with a low absorb threshold, stream columns
# in through `query --learn` until the learner retrains and swaps, and
# check the swap is visible as a generation bump with zero learn errors.
#
#   scripts/learn_smoke.sh path/to/autodetect
#
# Exits non-zero if any step fails, if the learner never swaps, or if
# the server does not exit cleanly after `stop`.
set -eu

BIN=${1:?usage: learn_smoke.sh path/to/autodetect-binary}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/adt-learn-smoke.XXXXXX")
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== learn smoke: training a miniature model"
"$BIN" gen-corpus --columns 600 --out "$WORK/seed.jsonl" >/dev/null 2>&1
mkdir -p "$WORK/models"
"$BIN" train --corpus "$WORK/seed.jsonl" --examples 2000 --space coarse \
    --out "$WORK/models/default.bin" >/dev/null 2>&1

# A small delta the queries upload; one row per scan keeps each tap
# under the learn queue's batch granularity.
cat > "$WORK/delta.csv" <<'EOF'
when,amount,code
2019-03-01,120,AB-1001
2019-03-02,95,AB-1008
2019/03/04,130,AB-1015
2019-03-05,88,AB-1022
EOF

echo "== learn smoke: starting server with the learn loop on"
"$BIN" serve --models "$WORK/models" --addr 127.0.0.1:0 \
    --learn --learn-absorb 6 --learn-interval 3600 \
    --learn-seed "$WORK/seed.jsonl" --examples 2000 --space coarse \
    > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVER_PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/^listening on //p' "$WORK/serve.out" | head -n 1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "learn smoke FAILED: server exited early" >&2
        cat "$WORK/serve.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "learn smoke FAILED: server never announced its address" >&2
    exit 1
fi
echo "== learn smoke: server is at $ADDR"

# Two learn-tapped queries upload 3 columns each, crossing the 6-column
# absorb threshold and triggering a retrain + swap.
"$BIN" query --addr "$ADDR" --learn "$WORK/delta.csv" > "$WORK/query1.out"
"$BIN" query --addr "$ADDR" --learn "$WORK/delta.csv" > "$WORK/query2.out"
if ! grep -q "generation 1" "$WORK/query1.out"; then
    echo "learn smoke FAILED: first query not served by generation 1:" >&2
    cat "$WORK/query1.out" >&2
    exit 1
fi

# Wait for the learner to retrain and swap (visible in /v1/stats).
echo "== learn smoke: waiting for the retrain + swap"
i=0
SWAPPED=0
while [ $i -lt 600 ]; do
    STATS=$("$BIN" query --addr "$ADDR" "$WORK/delta.csv" 2>/dev/null || true)
    if echo "$STATS" | grep -q "generation 2"; then
        SWAPPED=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ "$SWAPPED" != "1" ]; then
    echo "learn smoke FAILED: learner never swapped a new generation in" >&2
    cat "$WORK/serve.err" >&2
    exit 1
fi
echo "== learn smoke: generation 2 is live"

echo "== learn smoke: stopping server"
"$BIN" stop --addr "$ADDR"
( sleep 30; kill "$SERVER_PID" 2>/dev/null ) &
WATCHDOG=$!
if ! wait "$SERVER_PID"; then
    echo "learn smoke FAILED: server did not exit cleanly after stop" >&2
    cat "$WORK/serve.err" >&2
    exit 1
fi
SERVER_PID=""
kill "$WATCHDOG" 2>/dev/null || true
echo "learn smoke OK"
