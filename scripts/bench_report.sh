#!/bin/sh
# Perf report for the pattern-group scan kernel and the sharded training
# pipeline: races the group kernel against the naive value-pair reference
# and the corpus-major training pipeline against the language-major
# reference build, then writes BENCH_scan.json (override the path with
# BENCH_OUT) with per-shape median ns/op, NPMI probe counters, training
# throughput (columns/sec, values/sec, speedup vs reference), an
# `ensemble` section timing the multi-detector engine serial vs all
# cores with per-detector lanes, an `online` section racing the
# serve loop's incremental absorb + retrain against a from-scratch
# union train (byte-identity checked), and a `train_streaming` section
# racing the bounded-memory streaming co-occurrence mode against the
# exact pipeline — peak accumulator bytes, throughput, chosen sketch
# geometry, and byte-identity across 1/2/4/8 threads (the ci.sh smoke
# asserts the streaming peak stays under a fixed bound the exact
# pipeline exceeds).
#
#   scripts/bench_report.sh               # full: release build, full widths
#   scripts/bench_report.sh quick         # smoke: debug build, half widths
#   scripts/bench_report.sh quick-release # release build, half widths
#   ADT_OFFLINE=1 scripts/bench_report.sh quick   # via the devstubs copy
#
# quick-release exists for committing believable timing columns without
# paying for the full widths: the JSON's top-level `profile` field (and
# `train.profile`) records which build produced the numbers.
#
# Quick mode exists so CI can exercise the bench wiring and the built-in
# kernel differential check cheaply; its debug-build timings are not
# meaningful, only the probe columns are.
set -eu
cd "$(dirname "$0")/.."

MODE="${1:-full}"
OUT="${BENCH_OUT:-$(pwd)/BENCH_scan.json}"
FLAGS=""
PROFILE="--release"
case "$MODE" in
quick)
    FLAGS="--quick"
    PROFILE=""
    ;;
quick-release)
    FLAGS="--quick"
    ;;
full) ;;
*)
    echo "usage: scripts/bench_report.sh [full|quick|quick-release]" >&2
    exit 2
    ;;
esac

if [ "${ADT_OFFLINE:-0}" = "1" ]; then
    scripts/offline_check.sh run $PROFILE -q -p adt-bench --bin bench_report -- $FLAGS --out "$OUT"
else
    cargo run $PROFILE -q -p adt-bench --bin bench_report -- $FLAGS --out "$OUT"
fi

# Record the adt-analyze gate's end-to-end runtime (build + scan of the
# real tree) in the same sidecar: the lint pass is part of the CI budget
# and regressions in it should show up next to the kernel numbers. The
# analyzer's own per-pass stopwatch (`--timings`, emitted on stderr)
# rides along as `analyze_rule_seconds` so a slow rule is attributable
# without re-profiling.
TIMINGS="$(mktemp)"
START_NS=$(date +%s%N)
if [ "${ADT_OFFLINE:-0}" = "1" ]; then
    scripts/offline_check.sh run -q -p adt-analyze -- --json --timings --root "$(pwd)" >/dev/null 2>"$TIMINGS"
else
    cargo run -q -p adt-analyze -- --json --timings >/dev/null 2>"$TIMINGS"
fi
END_NS=$(date +%s%N)
python3 - "$OUT" "$START_NS" "$END_NS" "$TIMINGS" <<'EOF'
import json
import sys

path, start, end = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
with open(path) as f:
    data = json.load(f)
data["analyze_gate_seconds"] = round((end - start) / 1e9, 3)
# Keep only the analyzer's JSON object: cargo may interleave build
# chatter on stderr ahead of it.
raw = open(sys.argv[4]).read()
data["analyze_rule_seconds"] = json.loads(raw[raw.index("{"):])
with open(path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
EOF
rm -f "$TIMINGS"
echo "analyze gate + per-rule runtimes recorded in $OUT"
