#!/bin/sh
# Serving smoke test: train a tiny model with the real CLI, start
# `autodetect serve` on an ephemeral port, round-trip a query, and shut
# the server down cleanly.
#
#   scripts/serve_smoke.sh path/to/autodetect
#
# Exits non-zero if any step fails, if the known-dirty value is not
# flagged, or if the server does not exit cleanly after `stop`.
set -eu

BIN=${1:?usage: serve_smoke.sh path/to/autodetect-binary}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/adt-serve-smoke.XXXXXX")
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== serve smoke: training a miniature model"
"$BIN" gen-corpus --columns 2500 --out "$WORK/corpus.jsonl" >/dev/null 2>&1
mkdir -p "$WORK/models"
"$BIN" train --corpus "$WORK/corpus.jsonl" --examples 5000 --space coarse \
    --out "$WORK/models/default.bin" >/dev/null 2>&1

cat > "$WORK/ledger.csv" <<'EOF'
when,amount
2019-03-01,120
2019-03-02,95
2019/03/04,130
2019-03-05,88
EOF

echo "== serve smoke: starting server"
"$BIN" serve --models "$WORK/models" --addr 127.0.0.1:0 \
    > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVER_PID=$!

# Wait for the "listening on ADDR" banner (the bound ephemeral port).
ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/^listening on //p' "$WORK/serve.out" | head -n 1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "serve smoke FAILED: server exited early" >&2
        cat "$WORK/serve.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "serve smoke FAILED: server never announced its address" >&2
    exit 1
fi
echo "== serve smoke: server is at $ADDR"

"$BIN" query --addr "$ADDR" "$WORK/ledger.csv" > "$WORK/query.out"
if ! grep -q "2019/03/04" "$WORK/query.out"; then
    echo "serve smoke FAILED: known-dirty value not flagged:" >&2
    cat "$WORK/query.out" >&2
    exit 1
fi

echo "== serve smoke: stopping server"
"$BIN" stop --addr "$ADDR"

# A clean shutdown returns promptly; the watchdog turns a hang into a
# failed (killed → non-zero) wait instead of a stuck CI job.
( sleep 30; kill "$SERVER_PID" 2>/dev/null ) &
WATCHDOG=$!
if ! wait "$SERVER_PID"; then
    echo "serve smoke FAILED: server did not exit cleanly after stop" >&2
    cat "$WORK/serve.err" >&2
    exit 1
fi
SERVER_PID=""
kill "$WATCHDOG" 2>/dev/null || true
echo "serve smoke OK"
