#!/bin/sh
# Runs the workspace tests under AddressSanitizer and ThreadSanitizer.
#
#   scripts/sanitizers.sh                 # both sanitizers
#   scripts/sanitizers.sh address         # one of: address, thread
#   ADT_OFFLINE=1 scripts/sanitizers.sh   # via the devstubs scratch copy
#
# Sanitizers need a nightly toolchain (-Z flags) with the rust-src
# component (-Zbuild-std rebuilds std instrumented). When that toolchain
# is absent — the common case in the air-gapped container — this prints
# a clear SKIP and exits 0, so CI can invoke it unconditionally via
# ADT_SANITIZERS=1 ./ci.sh without breaking offline runs.
set -eu
cd "$(dirname "$0")/.."

WHICH="${1:-both}"

if ! command -v rustup >/dev/null 2>&1; then
    echo "sanitizers: SKIP (rustup not installed; a nightly toolchain is required)"
    exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "sanitizers: SKIP (no nightly toolchain; install with:" \
        "rustup toolchain install nightly && rustup component add rust-src --toolchain nightly)"
    exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null \
    | grep -q 'rust-src.*(installed)'; then
    echo "sanitizers: SKIP (nightly lacks rust-src; install with:" \
        "rustup component add rust-src --toolchain nightly)"
    exit 0
fi

HOST="$(rustc -vV | sed -n 's/^host: //p')"

run_one() {
    san="$1"
    echo "== cargo test under ${san} sanitizer"
    if [ "${ADT_OFFLINE:-0}" = "1" ]; then
        RUSTFLAGS="-Zsanitizer=${san}" RUSTDOCFLAGS="-Zsanitizer=${san}" \
            scripts/offline_check.sh +nightly test --workspace -q \
            -Zbuild-std --target "$HOST"
    else
        RUSTFLAGS="-Zsanitizer=${san}" RUSTDOCFLAGS="-Zsanitizer=${san}" \
            cargo +nightly test --workspace -q -Zbuild-std --target "$HOST"
    fi
}

case "$WHICH" in
both)
    run_one address
    run_one thread
    ;;
address | thread)
    run_one "$WHICH"
    ;;
*)
    echo "usage: scripts/sanitizers.sh [address|thread]" >&2
    exit 2
    ;;
esac

echo "sanitizers OK"
