#!/bin/sh
# Detector × error-class precision matrix: trains a small coarse-space
# model, runs every detector over one scenario per injected error class,
# and writes BENCH_matrix.json (override the path with MATRIX_OUT) with
# per-cell pooled precision@k and the per-detector priors consumed by
# the `calibrated` ensemble merge policy.
#
#   scripts/matrix_report.sh             # full: release build, 12 detectors
#   scripts/matrix_report.sh quick       # smoke: debug build, 4 detectors
#   ADT_OFFLINE=1 scripts/matrix_report.sh quick   # via the devstubs copy
#
# Quick mode exists so CI can exercise the matrix wiring cheaply; its
# precision numbers are noisy and its priors are not meant for real
# calibration.
set -eu
cd "$(dirname "$0")/.."

MODE="${1:-full}"
OUT="${MATRIX_OUT:-$(pwd)/BENCH_matrix.json}"
FLAGS=""
PROFILE="--release"
if [ "$MODE" = "quick" ]; then
    FLAGS="--quick"
    PROFILE=""
fi

if [ "${ADT_OFFLINE:-0}" = "1" ]; then
    scripts/offline_check.sh run $PROFILE -q -p adt-eval --bin matrix_report -- $FLAGS --out "$OUT"
else
    cargo run $PROFILE -q -p adt-eval --bin matrix_report -- $FLAGS --out "$OUT"
fi
echo "matrix written to $OUT"
