#!/bin/sh
# Offline build/check/test harness for air-gapped containers.
#
# The workspace's external dependencies live on crates.io; without
# registry access nothing resolves. This script copies the workspace to
# a scratch directory, rewrites [workspace.dependencies] to point at the
# stub crates in devstubs/ (see devstubs/README.md for fidelity caveats),
# deletes the proptest suites (stub proptest has no API), and runs the
# requested cargo command there.
#
# Usage:
#   scripts/offline_check.sh                 # cargo check --all-targets
#   scripts/offline_check.sh test           # cargo test (offline-safe subset)
#   scripts/offline_check.sh clippy        # cargo clippy -D warnings
#   scripts/offline_check.sh <anything>    # cargo <anything> in the copy
set -eu

REPO="$(cd "$(dirname "$0")/.." && pwd)"
SCRATCH="${ADT_OFFLINE_DIR:-/tmp/adt-offline-check}"
STUBS="$REPO/devstubs"

mkdir -p "$SCRATCH"
# Copy sources; keep the scratch target/ so incremental builds work.
(cd "$REPO" && tar cf - --exclude=./target --exclude=./.git --exclude=./devstubs \
    --exclude=./results .) | (cd "$SCRATCH" && tar xf -)

# Point every external dependency at its stub.
cat > "$SCRATCH/deps_override.py" <<EOF
import re
path = "$SCRATCH/Cargo.toml"
text = open(path).read()
stubs = "$STUBS"
for name in ["rand", "proptest", "criterion", "crossbeam", "parking_lot",
             "bytes", "serde_json"]:
    text = re.sub(r'(?m)^%s = .*$' % name,
                  '%s = { path = "%s/%s" }' % (name, stubs, name), text)
text = re.sub(r'(?m)^serde = .*$',
              'serde = { path = "%s/serde" }' % stubs, text)
open(path, "w").write(text)
EOF
python3 "$SCRATCH/deps_override.py"
rm "$SCRATCH/deps_override.py"

# The proptest suites need the real proptest crate; drop them offline.
find "$SCRATCH/crates" -name proptests.rs -delete

cd "$SCRATCH"
if [ "$#" -eq 0 ]; then
    exec cargo check --workspace --all-targets
fi
exec cargo "$@"
