#!/bin/sh
# Per-rule finding-count ratchet for the adt-analyze gate: run the
# analyzer over the live tree, extract the per-rule counts from its
# `--json` report, and diff them against the checked-in baseline
# (scripts/analyze_baseline.json). Any drift — a new finding slipping in
# OR a stale baseline after a burn-down — fails loudly with the per-rule
# delta so the author either fixes the regression or consciously
# re-baselines.
#
#   scripts/analyze_baseline.sh            # diff live counts vs baseline
#   scripts/analyze_baseline.sh --update   # rewrite the baseline in place
#   ADT_OFFLINE=1 scripts/analyze_baseline.sh  # via the devstubs copy
set -eu
cd "$(dirname "$0")/.."

BASELINE="scripts/analyze_baseline.json"
REPORT="$(mktemp)"
trap 'rm -f "$REPORT"' EXIT

# The binary may build in the offline scratch copy, but it always
# analyzes the real tree so the stub-parity rule sees devstubs/.
if [ "${ADT_OFFLINE:-0}" = "1" ]; then
    scripts/offline_check.sh run -q -p adt-analyze -- --json --root "$(pwd)" >"$REPORT"
else
    cargo run -q -p adt-analyze -- --json >"$REPORT"
fi

if [ "${1:-}" = "--update" ]; then
    python3 - "$REPORT" "$BASELINE" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    counts = json.load(f)["counts"]
with open(sys.argv[2], "w") as f:
    json.dump({"counts": counts}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"baseline rewritten: {sys.argv[2]}")
EOF
    exit 0
fi

python3 - "$REPORT" "$BASELINE" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    current = json.load(f)["counts"]
with open(sys.argv[2]) as f:
    baseline = json.load(f)["counts"]

drift = []
for rule in sorted(set(current) | set(baseline)):
    now, base = current.get(rule, 0), baseline.get(rule, 0)
    if now != base:
        drift.append((rule, base, now))

if drift:
    print("adt-analyze finding counts drifted from the checked-in baseline:", file=sys.stderr)
    for rule, base, now in drift:
        sign = "+" if now > base else ""
        print(f"  {rule}: {base} -> {now} ({sign}{now - base})", file=sys.stderr)
    print(
        "fix the findings (or add reasoned adt-allow markers), or re-baseline\n"
        "deliberately with: scripts/analyze_baseline.sh --update",
        file=sys.stderr,
    )
    sys.exit(1)

total = sum(current.values())
print(f"analyze baseline ok: {total} findings across {len(current)} rules match {sys.argv[2]}")
EOF
