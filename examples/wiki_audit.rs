//! WIKI audit: scan a Wikipedia-profile table corpus and print the
//! top-confidence errors — a miniature of the paper's Table 4 run that
//! discovered ~300K errors across Wikipedia tables.
//!
//! ```bash
//! cargo run --release --example wiki_audit
//! ```

use auto_detect::core::{train, AutoDetectConfig, ScanEngine};
use auto_detect::corpus::{generate_corpus, generate_labeled_columns, Column, CorpusProfile};

fn main() {
    println!("training on synthetic web corpus…");
    let mut web = CorpusProfile::web(20_000);
    web.dirty_rate = 0.0;
    let corpus = generate_corpus(&web);
    let config = AutoDetectConfig::builder()
        .training_examples(20_000)
        .build()
        .expect("valid config");
    let (model, _) = train(&corpus, &config).expect("training failed");

    println!("scanning WIKI-profile tables…");
    let wiki = CorpusProfile::wiki(5_000);
    let labeled = generate_labeled_columns(&wiki);

    // Scan every column in parallel; the report ranks findings across
    // the whole corpus, so the first finding per column is that column's
    // most incompatible pair.
    let columns: Vec<Column> = labeled.iter().map(|l| l.column.clone()).collect();
    let report = ScanEngine::from_model(model)
        .scan_columns(&columns)
        .expect("scan failed");
    let mut findings: Vec<(f64, String, String, bool, Option<String>)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for f in &report.findings {
        if seen.insert(f.column_index) {
            let l = &labeled[f.column_index];
            findings.push((
                f.finding.confidence,
                f.finding.suspect.clone(),
                f.finding.witness.clone(),
                l.is_error_value(&f.finding.suspect),
                l.error_note.clone(),
            ));
        }
    }

    let dirty_total = labeled.iter().filter(|l| l.is_dirty()).count();
    println!(
        "\n{} columns scanned, {} carry injected errors, {} columns flagged",
        labeled.len(),
        dirty_total,
        findings.len()
    );
    println!("\ntop 15 findings (cf. paper Table 4):");
    println!(
        "{:<4} {:<26} {:<26} {:>6} ground truth",
        "#", "suspect", "witness", "conf"
    );
    for (i, (q, suspect, witness, correct, note)) in findings.iter().take(15).enumerate() {
        println!(
            "{:<4} {:<26} {:<26} {:>6.3} {}",
            i + 1,
            suspect,
            witness,
            q,
            if *correct {
                note.clone().unwrap_or_else(|| "error".into())
            } else {
                "false positive".into()
            }
        );
    }
    let hits = findings.iter().take(100).filter(|f| f.3).count();
    println!(
        "\nprecision@100 = {:.2}  (paper reports >0.98 on real WIKI)",
        hits as f64 / findings.len().min(100) as f64
    );
}
