//! WIKI audit: scan a Wikipedia-profile table corpus and print the
//! top-confidence errors — a miniature of the paper's Table 4 run that
//! discovered ~300K errors across Wikipedia tables.
//!
//! ```bash
//! cargo run --release --example wiki_audit
//! ```

use auto_detect::core::{train, AutoDetectConfig};
use auto_detect::corpus::{generate_corpus, generate_labeled_columns, CorpusProfile};

fn main() {
    println!("training on synthetic web corpus…");
    let mut web = CorpusProfile::web(20_000);
    web.dirty_rate = 0.0;
    let corpus = generate_corpus(&web);
    let config = AutoDetectConfig {
        training_examples: 20_000,
        ..AutoDetectConfig::default()
    };
    let (model, _) = train(&corpus, &config);

    println!("scanning WIKI-profile tables…");
    let wiki = CorpusProfile::wiki(5_000);
    let labeled = generate_labeled_columns(&wiki);

    let mut findings: Vec<(f64, String, String, bool, Option<String>)> = Vec::new();
    for l in &labeled {
        if let Some(f) = model.most_incompatible(&l.column) {
            findings.push((
                f.confidence,
                f.suspect.clone(),
                f.witness.clone(),
                l.is_error_value(&f.suspect),
                l.error_note.clone(),
            ));
        }
    }
    findings.sort_by(|a, b| b.0.total_cmp(&a.0));

    let dirty_total = labeled.iter().filter(|l| l.is_dirty()).count();
    println!(
        "\n{} columns scanned, {} carry injected errors, {} columns flagged",
        labeled.len(),
        dirty_total,
        findings.len()
    );
    println!("\ntop 15 findings (cf. paper Table 4):");
    println!("{:<4} {:<26} {:<26} {:>6} ground truth", "#", "suspect", "witness", "conf");
    for (i, (q, suspect, witness, correct, note)) in findings.iter().take(15).enumerate() {
        println!(
            "{:<4} {:<26} {:<26} {:>6.3} {}",
            i + 1,
            suspect,
            witness,
            q,
            if *correct {
                note.clone().unwrap_or_else(|| "error".into())
            } else {
                "false positive".into()
            }
        );
    }
    let hits = findings.iter().take(100).filter(|f| f.3).count();
    println!(
        "\nprecision@100 = {:.2}  (paper reports >0.98 on real WIKI)",
        hits as f64 / findings.len().min(100) as f64
    );
}
