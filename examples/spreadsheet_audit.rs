//! Spreadsheet audit: load a CSV file and report suspicious cells per
//! column — the "spell-checker for data" experience the paper targets.
//!
//! ```bash
//! cargo run --release --example spreadsheet_audit [path/to/file.csv]
//! ```
//!
//! Without an argument, a demo spreadsheet with planted errors (mixed
//! date formats, a stray trailing dot, an extra space) is audited.

use auto_detect::core::{train, AutoDetect, AutoDetectConfig, ScanEngine};
use auto_detect::corpus::csv::columns_from_csv_text;
use auto_detect::corpus::{generate_corpus, Column, CorpusProfile};

const DEMO_CSV: &str = "\
date,amount,phone,city
2019-03-01,1240,(425) 555-0101,London
2019-03-02,980,(425) 555-0192,Paris
2019-03-03,1105,(425) 555-0147,Berlin
2019/03/04,1,332,(425) 555-0170,Madrid
2019-03-05,1210.,425-555-0133,Rome
2019-03-06,875,(425) 555-0155,Vienna
";

fn train_model() -> AutoDetect {
    println!("training on synthetic web corpus…");
    let mut profile = CorpusProfile::web(20_000);
    profile.dirty_rate = 0.0;
    let corpus = generate_corpus(&profile);
    let config = AutoDetectConfig::builder()
        .training_examples(20_000)
        .build()
        .expect("valid config");
    let (model, _) = train(&corpus, &config).expect("training failed");
    model
}

fn audit(model: AutoDetect, columns: &[Column]) {
    let engine = ScanEngine::from_model(model);
    let report = engine.scan_columns(columns).expect("scan failed");
    for summary in &report.columns {
        let header = summary
            .header
            .clone()
            .unwrap_or_else(|| format!("column {}", summary.index + 1));
        if summary.num_findings == 0 {
            println!("  [{header}] ok ({} cells)", columns[summary.index].len());
        } else {
            println!("  [{header}] {} suspicious value(s):", summary.num_findings);
            for f in report
                .findings
                .iter()
                .filter(|f| f.column_index == summary.index)
                .take(3)
            {
                println!(
                    "      {:?} clashes with {:?} (confidence {:.2})",
                    f.finding.suspect, f.finding.witness, f.finding.confidence
                );
            }
        }
    }
    println!("\n  {}", report.summary());
}

fn main() {
    let model = train_model();
    let args: Vec<String> = std::env::args().collect();
    let (label, text) = match args.get(1) {
        Some(path) => (
            path.clone(),
            std::fs::read_to_string(path).expect("readable CSV file"),
        ),
        None => ("demo spreadsheet".to_string(), DEMO_CSV.to_string()),
    };
    println!("\nauditing {label}:");
    let columns = columns_from_csv_text(&text, ',', true);
    audit(model, &columns);
}
