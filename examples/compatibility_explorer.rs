//! Compatibility explorer: reproduce the paper's Examples 1–2 by
//! inspecting NPMI scores of value pairs under different generalization
//! languages against corpus statistics.
//!
//! ```bash
//! cargo run --release --example compatibility_explorer
//! cargo run --release --example compatibility_explorer -- "2011-01-01" "2011.01.02"
//! ```

use auto_detect::corpus::{generate_corpus, CorpusProfile};
use auto_detect::patterns::{crude_generalize, Language, Pattern};
use auto_detect::stats::{LanguageStats, NpmiParams, StatsConfig};

fn main() {
    println!("building corpus statistics…");
    let mut profile = CorpusProfile::web(20_000);
    profile.dirty_rate = 0.0;
    let corpus = generate_corpus(&profile);

    let languages = [
        ("crude G", auto_detect::patterns::crude::crude_language()),
        ("L1 (symbols literal)", Language::paper_l1()),
        ("L2 (class level)", Language::paper_l2()),
    ];
    let stats: Vec<(&str, LanguageStats)> = languages
        .iter()
        .map(|(name, l)| {
            (
                *name,
                LanguageStats::build(*l, &corpus, &StatsConfig::default()),
            )
        })
        .collect();
    let params = NpmiParams::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let pairs: Vec<(String, String)> = if args.len() >= 2 {
        vec![(args[0].clone(), args[1].clone())]
    } else {
        vec![
            // Example 2 of the paper.
            ("2011-01-01".into(), "2011.01.02".into()),
            ("2014-01".into(), "July-01".into()),
            // The Col-1 / Col-2 motivation: these must look compatible.
            ("100".into(), "1,000,000".into()),
            ("42".into(), "3.99".into()),
            // Same-format dates never co-occur directly but share patterns.
            ("1918-01-01".into(), "2018-12-31".into()),
        ]
    };

    for (u, v) in &pairs {
        println!(
            "\npair ({u:?}, {v:?})  [crude patterns {} | {}]",
            crude_generalize(u),
            crude_generalize(v)
        );
        for (name, s) in &stats {
            let pu = Pattern::generalize(u, &s.language);
            let pv = Pattern::generalize(v, &s.language);
            let score = s.score_values(u, v, params);
            let verdict = if score <= -0.3 {
                "INCOMPATIBLE"
            } else if score >= 0.2 {
                "compatible"
            } else {
                "neutral"
            };
            println!("  {name:<22} {pu} | {pv}  NPMI = {score:+.3}  {verdict}");
        }
    }
}
