//! Pattern profiling: the Trifacta-style per-column histogram the paper
//! contrasts with (Appendix A), built from the same generalization
//! machinery.
//!
//! ```bash
//! cargo run --release --example profile_column
//! ```

use auto_detect::corpus::{Column, SourceTag};
use auto_detect::patterns::Language;
use auto_detect::stats::column_profile;

fn main() {
    let column = Column::from_strs(
        &[
            "2011-01-01",
            "2011-02-14",
            "2011-03-02",
            "2011/04/22",
            "2011-05-30",
            "2011-06-18",
            "N/A",
            "2011-07-04",
        ],
        SourceTag::Local,
    );

    for (name, lang) in [
        ("L1 (symbols literal)", Language::paper_l1()),
        ("L2 (class level)", Language::paper_l2()),
        ("crude G", auto_detect::patterns::crude::crude_language()),
    ] {
        let profile = column_profile(&column, &lang);
        println!(
            "\nunder {name} — {} cells, dominant pattern covers {:.0}%:",
            profile.cells,
            profile.dominant_fraction() * 100.0
        );
        for b in &profile.buckets {
            println!(
                "  {:<28} ×{:<3} e.g. {:?}",
                b.pattern,
                b.count,
                b.examples.first().map(|s| s.as_str()).unwrap_or("")
            );
        }
    }
    println!(
        "\nA histogram shows *that* the column is mixed; Auto-Detect's corpus\n\
         statistics additionally say *which* mixes are genuinely suspicious\n\
         (run the quickstart example for the detection side)."
    );
}
