//! Quickstart: train Auto-Detect on a synthetic web-table corpus and
//! detect incompatible values in a column.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use auto_detect::core::{train, AutoDetectConfig};
use auto_detect::corpus::{generate_corpus, Column, CorpusProfile, SourceTag};

fn main() {
    // 1. A training corpus. In the paper this is 350M web-table columns;
    //    here the synthetic generator reproduces the same co-occurrence
    //    structure at laptop scale.
    println!("generating training corpus…");
    let mut profile = CorpusProfile::web(20_000);
    profile.dirty_rate = 0.0;
    let corpus = generate_corpus(&profile);

    // 2. Train: distant supervision -> per-language calibration -> greedy
    //    language selection under a memory budget.
    println!("training Auto-Detect ({} columns)…", corpus.len());
    let config = AutoDetectConfig::builder()
        .training_examples(20_000)
        .memory_budget(32 << 20)
        .build()
        .expect("valid config");
    let (model, report) = train(&corpus, &config).expect("training failed");
    println!(
        "selected {} generalization languages {:?} ({} KB)",
        model.num_languages(),
        report.selected_ids,
        report.model_bytes / 1024
    );

    // 3. Detect. The third date uses a different format — the classic
    //    Figure 1(b) error.
    let column = Column::from_strs(
        &[
            "2011-01-01",
            "2011-02-14",
            "2011/03/02",
            "2011-04-22",
            "2011-05-30",
        ],
        SourceTag::Local,
    );
    println!("\nauditing column: {:?}", column.values);
    for finding in model.detect_column(&column) {
        println!(
            "  suspect {:?} (incompatible with {:?}, confidence {:.3})",
            finding.suspect, finding.witness, finding.confidence
        );
    }

    // 4. And the counter-example: integers, separated integers and floats
    //    legitimately co-occur (the paper's Col-1/Col-2), so nothing fires.
    let numbers = Column::from_strs(&["12", "340", "7", "1,000", "5.25"], SourceTag::Local);
    println!("\nauditing column: {:?}", numbers.values);
    let findings = model.detect_column(&numbers);
    if findings.is_empty() {
        println!("  clean — mixed numeric formats co-occur globally, no error");
    } else {
        for finding in findings {
            println!(
                "  suspect {:?} (confidence {:.3})",
                finding.suspect, finding.confidence
            );
        }
    }
}
